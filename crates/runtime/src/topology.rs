//! The threaded topology: spout → dispatcher → join instances → collector,
//! with one monitor thread per group (the Storm deployment of §V, scaled
//! to one process).
//!
//! Executor-to-executor communication uses crossbeam channels; each join
//! instance has exactly one input channel, so all messages it receives are
//! FIFO per sender — the ordering contract the migration protocol needs.
//! The *data* channel into each instance is bounded (Storm-style
//! backpressure propagating to the spout); every *control* edge
//! (instance → dispatcher, instance → monitor, instance → collector,
//! instance → instance) is unbounded, which breaks the only potential
//! wait-for cycle (dispatcher blocked on a full instance queue while that
//! instance publishes a routing update).

use std::thread;
use std::time::{Duration, Instant};

use crossbeam::channel::{bounded, unbounded, Receiver, RecvTimeoutError, Sender};

use fastjoin_baselines::{build_partitioners, SystemKind};
use fastjoin_core::config::FastJoinConfig;
use fastjoin_core::dispatcher::{Dispatch, Dispatcher};
use fastjoin_core::instance::JoinInstance;
use fastjoin_core::instance::Work;
use fastjoin_core::metrics::{MetricsRegistry, MigrationSpan, TimeSeries};
use fastjoin_core::monitor::{Monitor, MonitorStats};
use fastjoin_core::protocol::{Effects, InstanceMsg, MigrationState};
use fastjoin_core::selection::make_selector;
use fastjoin_core::tuple::{JoinedPair, Side, Tuple};

use crate::accounting::ProbeAccountant;
use crate::msg::{DispatcherMsg, MonitorMsg, ProbeRecord, RtMsg};
use crate::report::RuntimeReport;

/// Runtime configuration.
#[derive(Debug, Clone)]
pub struct RuntimeConfig {
    /// Which system to run.
    pub system: SystemKind,
    /// Cluster configuration (instances, Θ, selector, window, …).
    pub fastjoin: FastJoinConfig,
    /// Capacity of each instance's input channel (backpressure bound).
    pub queue_cap: usize,
    /// Monitor sampling period in wall-clock milliseconds.
    pub monitor_period_ms: u64,
    /// Optional spout rate limit, tuples/second (None = full speed).
    pub rate_limit: Option<f64>,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            system: SystemKind::FastJoin,
            fastjoin: FastJoinConfig::default(),
            queue_cap: 4096,
            monitor_period_ms: 100,
            rate_limit: None,
        }
    }
}

/// Handle used by instance executors to address their peers.
struct GroupWiring {
    /// Senders to every instance of this group.
    to_instances: Vec<Sender<RtMsg>>,
    /// Sender to this group's monitor (None for static systems).
    to_monitor: Option<Sender<MonitorMsg>>,
}

/// Runs a complete topology over a workload and reports the measurements.
///
/// # Panics
/// Panics if the configuration is invalid or a worker thread panics.
pub fn run_topology(
    cfg: &RuntimeConfig,
    workload: impl IntoIterator<Item = Tuple>,
) -> RuntimeReport {
    run_topology_inner(cfg, workload, None)
}

/// Like [`run_topology`], but additionally streams every joined pair to
/// `results` as it is produced (unordered across instances; exactly once).
/// Dropping the receiver mid-run is safe — emission is best-effort.
///
/// # Panics
/// Panics if the configuration is invalid or a worker thread panics.
pub fn run_topology_with_results(
    cfg: &RuntimeConfig,
    workload: impl IntoIterator<Item = Tuple>,
    results: Sender<JoinedPair>,
) -> RuntimeReport {
    run_topology_inner(cfg, workload, Some(results))
}

fn run_topology_inner(
    cfg: &RuntimeConfig,
    workload: impl IntoIterator<Item = Tuple>,
    results: Option<Sender<JoinedPair>>,
) -> RuntimeReport {
    cfg.fastjoin.validate().expect("invalid configuration"); // lint:allow(startup config validation, before any data flows)
    let n = cfg.fastjoin.instances_per_group;
    let (r_part, s_part, dynamic) = build_partitioners(cfg.system, &cfg.fastjoin);
    let start = Instant::now();
    let now_us = move || start.elapsed().as_micros() as u64;

    // Channels.
    let (disp_data_tx, disp_data_rx) = bounded::<DispatcherMsg>(cfg.queue_cap);
    let (disp_ctrl_tx, disp_ctrl_rx) = unbounded::<DispatcherMsg>();
    let mut inst_txs: [Vec<Sender<RtMsg>>; 2] = [Vec::new(), Vec::new()];
    let mut inst_rxs: [Vec<Receiver<RtMsg>>; 2] = [Vec::new(), Vec::new()];
    for g in 0..2 {
        for _ in 0..n {
            let (tx, rx) = bounded::<RtMsg>(cfg.queue_cap);
            inst_txs[g].push(tx); // lint:allow(g ranges over the two fixed groups)
            inst_rxs[g].push(rx); // lint:allow(g ranges over the two fixed groups)
        }
    }
    let (collector_tx, collector_rx) = unbounded::<CollectorMsg>();
    let mut mon_txs: [Option<Sender<MonitorMsg>>; 2] = [None, None];
    let mut mon_rxs: [Option<Receiver<MonitorMsg>>; 2] = [None, None];
    if dynamic {
        for g in 0..2 {
            let (tx, rx) = unbounded::<MonitorMsg>();
            mon_txs[g] = Some(tx); // lint:allow(g ranges over the two fixed groups)
            mon_rxs[g] = Some(rx); // lint:allow(g ranges over the two fixed groups)
        }
    }
    let mut handles = Vec::new();

    // --- Dispatcher executor ------------------------------------------
    {
        let inst_txs = [inst_txs[0].clone(), inst_txs[1].clone()]; // lint:allow(both groups exist by construction)
        let data_rx = disp_data_rx;
        let ctrl_rx = disp_ctrl_rx;
        let collector = collector_tx.clone();
        handles.push(
            thread::Builder::new()
                .name("dispatcher".into())
                .spawn(move || {
                    let mut dispatcher = Dispatcher::new(r_part, s_part);
                    let mut scratch = Dispatch::default();
                    let mut reg = MetricsRegistry::new();
                    loop {
                        // Select across data and control; whichever order
                        // they are served in, an instance's buffer catches
                        // any selected-key data that was routed before the
                        // table update (see core::instance). The control
                        // channel never disconnects before the data channel
                        // (instances outlive the spout), so data closure is
                        // the shutdown signal.
                        let msg = crossbeam::select! {
                            recv(ctrl_rx) -> m => match m {
                                Ok(m) => m,
                                // Control senders all gone: only data can
                                // arrive now. Block on it instead of
                                // spinning through the always-ready
                                // disconnected arm.
                                Err(_) => match data_rx.recv() {
                                    Ok(m) => m,
                                    Err(_) => break,
                                },
                            },
                            recv(data_rx) -> m => match m {
                                Ok(m) => m,
                                Err(_) => break,
                            },
                        };
                        match msg {
                            DispatcherMsg::Ingest(mut t) => {
                                // The shuffler stamps tuples at ingest (§V).
                                t.ts = now_us();
                                dispatcher.dispatch_into(t, &mut scratch);
                                let t = scratch.tuple;
                                let own = t.side.index();
                                let opp = t.side.opposite().index();
                                let fanout = scratch.probe_dests.len() as u32;
                                reg.counter_add("tuples_ingested", 1);
                                reg.counter_add("probe_copies", u64::from(fanout));
                                let _ = inst_txs[own][scratch.store_dest] // lint:allow(partitioner contract: routes are < instances())
                                    .send(RtMsg::Inst(InstanceMsg::Data(t)));
                                for &d in &scratch.probe_dests {
                                    let _ = inst_txs[opp][d].send(RtMsg::Probe(t, fanout)); // lint:allow(partitioner contract: routes are < instances())
                                }
                            }
                            DispatcherMsg::Route { group, req } => {
                                let ok = dispatcher
                                    .apply_route(if group == 0 { Side::R } else { Side::S }, &req);
                                assert!(ok, "route update on non-migratable partitioner"); // lint:allow(config contract: dynamic mode implies a migratable partitioner)
                                reg.counter_add("route_updates", 1);
                                let _ = inst_txs[group][req.source] // lint:allow(RouteRequest.source is a valid instance id)
                                    .send(RtMsg::Inst(InstanceMsg::RouteUpdated { epoch: req.epoch }));
                            }
                            DispatcherMsg::Eos => {
                                // Ship the dispatcher's metrics before any
                                // instance can see EOS: enqueuing first
                                // guarantees DispatcherDone precedes the
                                // final InstanceDone in the collector.
                                let _ = collector.send(CollectorMsg::DispatcherDone {
                                    registry: Box::new(std::mem::take(&mut reg)),
                                });
                                for group in &inst_txs {
                                    for tx in group {
                                        let _ = tx.send(RtMsg::Eos);
                                    }
                                }
                                break;
                            }
                        }
                    }
                })
                .expect("spawn dispatcher"), // lint:allow(thread spawn at startup)
        );
    }

    // --- Instance executors -------------------------------------------
    for g in 0..2 {
        let side = if g == 0 { Side::R } else { Side::S };
        // lint:allow(g ranges over the two fixed groups)
        for (i, rx) in inst_rxs[g].iter().enumerate() {
            let rx = rx.clone();
            let wiring = GroupWiring {
                to_instances: inst_txs[g].clone(), // lint:allow(g ranges over the two fixed groups)
                to_monitor: mon_txs[g].clone(),    // lint:allow(g ranges over the two fixed groups)
            };
            let disp_ctrl = disp_ctrl_tx.clone();
            let collector = collector_tx.clone();
            let fj = cfg.fastjoin.clone();
            let results = results.clone();
            let sample_period_us = cfg.monitor_period_ms.max(1) * 1_000;
            handles.push(
                thread::Builder::new()
                    .name(format!("join-{side}-{i}"))
                    .spawn(move || {
                        let ctx = InstanceCtx {
                            group: g,
                            id: i,
                            side,
                            fj: &fj,
                            sample_period_us,
                            now_us: &now_us,
                        };
                        instance_loop(&ctx, &rx, &wiring, &disp_ctrl, &collector, results);
                    })
                    .expect("spawn instance"), // lint:allow(thread spawn at startup)
            );
        }
    }

    // --- Monitor executors --------------------------------------------
    let (quiesce_ack_tx, quiesce_ack_rx) = unbounded::<usize>();
    if dynamic {
        for g in 0..2 {
            let rx = mon_rxs[g].take().expect("dynamic groups have monitors"); // lint:allow(dynamic branch: monitors were just built for both groups)
            let to_instances = inst_txs[g].clone(); // lint:allow(g ranges over the two fixed groups)
            let fj = cfg.fastjoin.clone();
            let period = Duration::from_millis(cfg.monitor_period_ms);
            let collector = collector_tx.clone();
            let ack = quiesce_ack_tx.clone();
            handles.push(
                thread::Builder::new()
                    .name(format!("monitor-{g}"))
                    .spawn(move || {
                        monitor_loop(g, &fj, period, &rx, &to_instances, &collector, &ack, &now_us);
                    })
                    .expect("spawn monitor"), // lint:allow(thread spawn at startup)
            );
        }
    }
    drop(quiesce_ack_tx);
    drop(collector_tx);
    drop(disp_ctrl_tx);
    // Drop our copies of the instance senders so channels disconnect once
    // the dispatcher and monitors are done with theirs.
    inst_txs = [Vec::new(), Vec::new()];
    debug_assert!(inst_txs.iter().all(Vec::is_empty));

    // --- Spout (this thread) ------------------------------------------
    // Pacing is hybrid: sleep off the bulk of the inter-tuple gap, then
    // spin only the last stretch (the scheduler cannot be trusted below
    // ~100 µs, but a pure busy-wait burned a full core at low rates).
    const SPIN_WINDOW: Duration = Duration::from_micros(150);
    let mut ingested = 0u64;
    let gap = cfg.rate_limit.map(|r| Duration::from_secs_f64(1.0 / r));
    let mut next_send = Instant::now();
    for t in workload {
        if let Some(gap) = gap {
            loop {
                let now = Instant::now();
                if now >= next_send {
                    break;
                }
                let remaining = next_send - now;
                if remaining > SPIN_WINDOW {
                    thread::sleep(remaining - SPIN_WINDOW);
                } else {
                    std::hint::spin_loop();
                }
            }
            next_send += gap;
        }
        disp_data_tx.send(DispatcherMsg::Ingest(t)).expect("dispatcher alive"); // lint:allow(dispatcher outlives ingest; a dead dispatcher already panicked)
        ingested += 1;
    }

    // --- Shutdown handshake -------------------------------------------
    if dynamic {
        for tx in mon_txs.iter().flatten() {
            let _ = tx.send(MonitorMsg::Quiesce);
        }
        // Wait for both monitors to confirm no round is in flight.
        let mut acked = 0;
        while acked < 2 {
            match quiesce_ack_rx.recv_timeout(Duration::from_secs(60)) {
                Ok(_) => acked += 1,
                Err(e) => panic!("monitor quiesce timed out: {e}"), // lint:allow(shutdown watchdog: a stuck monitor must fail the run loudly)
            }
        }
    }
    mon_txs = [None, None];
    let _ = &mon_txs;
    disp_data_tx.send(DispatcherMsg::Eos).expect("dispatcher alive"); // lint:allow(dispatcher outlives ingest; a dead dispatcher already panicked)
    drop(disp_data_tx);

    // --- Collect -------------------------------------------------------
    let mut accountant = ProbeAccountant::new();
    let mut throughput = TimeSeries::new(1_000_000);
    let mut results_total = 0u64;
    let mut counters: [Vec<_>; 2] = [vec![Default::default(); n], vec![Default::default(); n]];
    let mut done = 0;
    let mut monitor_stats: [Option<MonitorStats>; 2] = [None, None];
    let mut imbalance: [Option<TimeSeries>; 2] = [None, None];
    let mut migration_spans: [Vec<MigrationSpan>; 2] = [Vec::new(), Vec::new()];
    let mut registry = MetricsRegistry::new();
    // Route-flip latencies arrive from instances keyed by (group, epoch)
    // and are patched into the matching monitor span after MonitorDone.
    let mut route_flips: Vec<(usize, u64, u64)> = Vec::new();
    while let Ok(msg) = collector_rx.recv() {
        match msg {
            CollectorMsg::Probe { seq, fanout, record } => {
                results_total += record.matches;
                throughput.record(now_us(), record.matches as f64);
                accountant
                    .on_probe(seq, fanout, record.latency_us)
                    // lint:allow(accounting corruption means every later count is garbage; fail the run loudly)
                    .unwrap_or_else(|e| panic!("probe accounting violated: {e}"));
            }
            CollectorMsg::RouteFlip { group, epoch, us } => {
                route_flips.push((group, epoch, us));
            }
            CollectorMsg::InstanceDone { group, id, counters: c, registry: r } => {
                counters[group][id] = c; // lint:allow(group and id come from our own spawned executors)
                let prefix = format!("inst.{}{id}.", if group == 0 { 'r' } else { 's' });
                registry.merge_prefixed(&prefix, &r);
                done += 1;
                if done == 2 * n {
                    break;
                }
            }
            CollectorMsg::MonitorDone { group, stats, spans, li } => {
                monitor_stats[group] = Some(stats); // lint:allow(group is 0 or 1 by construction)
                migration_spans[group] = spans; // lint:allow(group is 0 or 1 by construction)
                imbalance[group] = Some(*li); // lint:allow(group is 0 or 1 by construction)
            }
            CollectorMsg::DispatcherDone { registry: r } => {
                registry.merge_prefixed("dispatcher.", &r);
            }
        }
    }
    // Monitors report their stats after the last instance exits.
    if dynamic {
        while monitor_stats.iter().any(Option::is_none) {
            match collector_rx.recv_timeout(Duration::from_secs(10)) {
                Ok(CollectorMsg::MonitorDone { group, stats, spans, li }) => {
                    monitor_stats[group] = Some(stats); // lint:allow(group is 0 or 1 by construction)
                    migration_spans[group] = spans; // lint:allow(group is 0 or 1 by construction)
                    imbalance[group] = Some(*li); // lint:allow(group is 0 or 1 by construction)
                }
                Ok(CollectorMsg::RouteFlip { group, epoch, us }) => {
                    route_flips.push((group, epoch, us));
                }
                Ok(_) => {}
                Err(e) => panic!("monitor stats never arrived: {e}"), // lint:allow(shutdown watchdog: missing stats must fail the run loudly)
            }
        }
    }

    for h in handles {
        h.join().expect("worker thread panicked"); // lint:allow(propagates a worker panic at shutdown)
    }

    // Shutdown invariant: every probe's fan-out parts drained to zero.
    let (probes_total, latency) = accountant
        .finish()
        // lint:allow(shutdown invariant: leaked fan-out entries mean lost latency samples; fail loudly)
        .unwrap_or_else(|e| panic!("probe accounting corrupted at shutdown: {e}"));
    // And no instance abandoned fan-out entries on its side either.
    let leaked = registry.counter_sum("probe_fanout_leaked");
    // lint:allow(shutdown invariant: a leak here is the exact bug the hand-off protocol fixes)
    assert_eq!(leaked, 0, "{leaked} probe fan-out entrie(s) leaked in instances");

    for (group, epoch, us) in route_flips {
        if let Some(span) = migration_spans[group] // lint:allow(group is 0 or 1 by construction)
            .iter_mut()
            .find(|s| s.epoch == epoch)
        {
            span.route_flip_us = Some(us);
        }
    }

    RuntimeReport {
        duration_us: now_us(),
        tuples_ingested: ingested,
        results_total,
        probes_total,
        latency,
        throughput,
        counters,
        monitor_stats,
        imbalance,
        migration_spans,
        registry,
    }
}

/// Messages into the collector.
enum CollectorMsg {
    Probe {
        seq: u64,
        fanout: u32,
        record: ProbeRecord,
    },
    /// Routing-update round trip measured at the migration source:
    /// `MigrateCmd` receipt → `RouteUpdated` receipt, in microseconds.
    RouteFlip {
        group: usize,
        epoch: u64,
        us: u64,
    },
    InstanceDone {
        group: usize,
        id: usize,
        counters: fastjoin_core::instance::InstanceCounters,
        registry: MetricsRegistry,
    },
    MonitorDone {
        group: usize,
        stats: MonitorStats,
        spans: Vec<MigrationSpan>,
        li: Box<TimeSeries>,
    },
    DispatcherDone {
        registry: Box<MetricsRegistry>,
    },
}

/// Immutable per-instance-executor context (identity, config, clock).
struct InstanceCtx<'a> {
    group: usize,
    id: usize,
    side: Side,
    fj: &'a FastJoinConfig,
    /// Bucket width of the executor's sampled time series (µs); one
    /// monitor period, so samples align with load reports.
    sample_period_us: u64,
    now_us: &'a dyn Fn() -> u64,
}

fn instance_loop(
    ctx: &InstanceCtx<'_>,
    rx: &Receiver<RtMsg>,
    wiring: &GroupWiring,
    disp_ctrl: &Sender<DispatcherMsg>,
    collector: &Sender<CollectorMsg>,
    results: Option<Sender<JoinedPair>>,
) {
    let (group, id, fj, now_us) = (ctx.group, ctx.id, ctx.fj, ctx.now_us);
    let mut inst = JoinInstance::new(id, ctx.side, fj.window);
    // Pairs are only materialized when a consumer wants them.
    inst.set_emit_pairs(results.is_some());
    inst.set_migration_mode(fj.migration_mode);
    let mut selector = make_selector(&FastJoinConfig {
        seed: fj.seed.wrapping_add(group as u64).wrapping_add(id as u64 * 97),
        ..fj.clone()
    });
    let mut fx = Effects::new();
    let mut eos = false;
    // Fan-out of every probe received but not yet completed, keyed by seq.
    // Entries for probes forwarded to a migration target are handed off
    // with the tuples (see `RtMsg::ProbeHandoff`); at exit the map must be
    // empty — leaks are counted and asserted on by the collector.
    let mut probe_fanout: std::collections::HashMap<u64, u32> = std::collections::HashMap::new();
    // `MigrateCmd` receipt time by epoch, closed out by `RouteUpdated` —
    // the route-flip latency of a migration round this instance sourced.
    let mut flip_started: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
    let mut reg = MetricsRegistry::new();

    while let Ok(msg) = rx.recv() {
        match msg {
            RtMsg::Inst(m) => {
                if let InstanceMsg::MigrateCmd { epoch, .. } = &m {
                    flip_started.insert(*epoch, now_us());
                }
                if let InstanceMsg::RouteUpdated { epoch } = &m {
                    if let Some(t0) = flip_started.remove(epoch) {
                        let _ = collector.send(CollectorMsg::RouteFlip {
                            group,
                            epoch: *epoch,
                            us: now_us().saturating_sub(t0),
                        });
                    }
                }
                inst.handle(m, selector.as_mut(), fj.theta_gap, &mut fx)
                    // lint:allow(a protocol violation in the threaded runtime is unrecoverable)
                    .unwrap_or_else(|e| panic!("protocol violation: {e}"));
            }
            RtMsg::Probe(t, fanout) => {
                probe_fanout.insert(t.seq, fanout);
                inst.handle(InstanceMsg::Data(t), selector.as_mut(), fj.theta_gap, &mut fx)
                    // lint:allow(Data never returns a protocol error)
                    .unwrap_or_else(|e| panic!("protocol violation: {e}"));
            }
            RtMsg::ProbeHandoff(entries) => {
                // Fan-outs of probes a migration source is about to forward
                // to us; FIFO guarantees they precede the MigForward.
                reg.counter_add("probe_handoffs_in", entries.len() as u64);
                probe_fanout.extend(entries);
            }
            RtMsg::ReportRequest => {
                inst.collect_expired();
                let load = inst.take_load_report();
                let now = now_us();
                reg.series_record("queue_depth", ctx.sample_period_us, now, rx.len() as f64);
                let buffered = match inst.migration_state() {
                    MigrationState::Idle => 0,
                    MigrationState::Source { buffer, .. } => buffer.len(),
                    MigrationState::Target { held, .. } => held.len(),
                };
                reg.gauge_set("mig_buffered_tuples", buffered as f64);
                reg.series_record("mig_buffered", ctx.sample_period_us, now, buffered as f64);
                if let Some(mon) = &wiring.to_monitor {
                    let _ = mon.send(MonitorMsg::Report { id, load });
                }
            }
            RtMsg::Eos => eos = true,
        }
        flush_instance_effects(
            group,
            &mut fx,
            &mut probe_fanout,
            &mut reg,
            wiring,
            disp_ctrl,
            &results,
        );
        // Process everything currently pending before taking new input.
        while let Some(work) = inst.process_next(&mut fx) {
            if let Work::Probe { tuple, matches, .. } = work {
                let fanout = probe_fanout
                    .remove(&tuple.seq)
                    // lint:allow(accounting invariant: the fan-out arrived with the probe or its hand-off; absence is the bug this layer fixes)
                    .unwrap_or_else(|| panic!("probe {} has no fan-out entry", tuple.seq));
                let record = ProbeRecord { matches, latency_us: now_us().saturating_sub(tuple.ts) };
                let _ = collector.send(CollectorMsg::Probe { seq: tuple.seq, fanout, record });
            }
            flush_instance_effects(
                group,
                &mut fx,
                &mut probe_fanout,
                &mut reg,
                wiring,
                disp_ctrl,
                &results,
            );
        }
        if eos && inst.migration_state().is_idle() {
            // All probes this instance received must have completed here or
            // been handed off; the collector asserts the sum stays zero.
            reg.counter_add("probe_fanout_leaked", probe_fanout.len() as u64);
            let _ = collector.send(CollectorMsg::InstanceDone {
                group,
                id,
                counters: inst.counters(),
                registry: reg,
            });
            break;
        }
    }
}

fn flush_instance_effects(
    group: usize,
    fx: &mut Effects,
    probe_fanout: &mut std::collections::HashMap<u64, u32>,
    reg: &mut MetricsRegistry,
    wiring: &GroupWiring,
    disp_ctrl: &Sender<DispatcherMsg>,
    results: &Option<Sender<JoinedPair>>,
) {
    if let Some(tx) = results {
        for pair in fx.joined.drain(..) {
            let _ = tx.send(pair); // receiver may have hung up — best effort
        }
    } else {
        fx.joined.clear(); // pairs are not materialized without a consumer
    }
    for (to, msg) in fx.sends.drain(..) {
        if let InstanceMsg::MigForward { tuples, .. } = &msg {
            // Probe-side tuples in the forwarded buffer take their fan-out
            // entries with them; sending the hand-off on the same channel
            // first means the target owns the entries before the tuples
            // arrive (per-channel FIFO). Store-side tuples have no entry
            // and are skipped by the lookup.
            let entries: Vec<(u64, u32)> = tuples
                .iter()
                .filter_map(|t| probe_fanout.remove(&t.seq).map(|f| (t.seq, f)))
                .collect();
            if !entries.is_empty() {
                reg.counter_add("probe_handoffs_out", entries.len() as u64);
                if let Some(ch) = wiring.to_instances.get(to) {
                    let _ = ch.send(RtMsg::ProbeHandoff(entries));
                }
            }
        }
        let _ = wiring.to_instances[to].send(RtMsg::Inst(msg)); // lint:allow(protocol contract: peer ids are valid instance indices)
    }
    for req in fx.route_requests.drain(..) {
        let _ = disp_ctrl.send(DispatcherMsg::Route { group, req });
    }
    for done in fx.migration_done.drain(..) {
        if let Some(mon) = &wiring.to_monitor {
            let _ = mon.send(MonitorMsg::Done(done));
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn monitor_loop(
    group: usize,
    fj: &FastJoinConfig,
    period: Duration,
    rx: &Receiver<MonitorMsg>,
    to_instances: &[Sender<RtMsg>],
    collector: &Sender<CollectorMsg>,
    quiesce_ack: &Sender<usize>,
    now_us: &dyn Fn() -> u64,
) {
    let n = to_instances.len();
    // The runtime's monitor clock is wall-clock milliseconds; the µs
    // cooldown goes through the one sanctioned conversion (rounds up, so
    // a sub-millisecond cooldown can never truncate to "disabled").
    let mut monitor = Monitor::new(n, fj.theta, fj.migration_cooldown_ms());
    // Live LI trace (the paper's Fig. 11), one bucket per monitor tick.
    let mut li = TimeSeries::new((period.as_micros() as u64).max(1));
    let mut quiescing = false;
    let mut acked = false;
    let mut next_tick = Instant::now() + period;
    #[allow(clippy::while_let_loop)] // the loop body has multiple exits
    loop {
        // Ask every instance for its period statistics.
        let timeout = next_tick.saturating_duration_since(Instant::now());
        match rx.recv_timeout(timeout) {
            Ok(MonitorMsg::Report { id, load }) => monitor.on_report(id, load),
            Ok(MonitorMsg::Done(done)) => {
                monitor.on_migration_done(done, now_us() / 1000);
            }
            Ok(MonitorMsg::Quiesce) => quiescing = true,
            Err(RecvTimeoutError::Timeout) => {
                next_tick += period;
                li.record(now_us(), monitor.imbalance());
                for tx in to_instances {
                    let _ = tx.send(RtMsg::ReportRequest);
                }
                if !quiescing {
                    if let Some(trigger) = monitor.maybe_trigger(now_us() / 1000) {
                        // lint:allow(monitor only triggers sources it was built to watch)
                        let _ = to_instances[trigger.source].send(RtMsg::Inst(trigger.msg));
                    }
                }
            }
            Err(RecvTimeoutError::Disconnected) => break,
        }
        if quiescing && !acked && !monitor.migration_in_flight() {
            let _ = quiesce_ack.send(group);
            acked = true;
        }
    }
    // Close the LI trace with a final sample so even runs shorter than one
    // monitor period report a (possibly single-point) series.
    li.record(now_us(), monitor.imbalance());
    let _ = collector.send(CollectorMsg::MonitorDone {
        group,
        stats: monitor.stats(),
        spans: monitor.spans().to_vec(),
        li: Box::new(li),
    });
}
