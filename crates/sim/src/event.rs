//! The discrete-event machinery: a time-ordered event queue and per-channel
//! FIFO clocks.
//!
//! Correctness of the migration protocol requires FIFO delivery per
//! (sender → receiver) channel (see `fastjoin-core::protocol`). Messages
//! can carry different delays (e.g. a migration payload's transfer time),
//! so the queue alone does not guarantee FIFO; [`ChannelClock`] pushes each
//! send's delivery time to at least the previous delivery time on the same
//! channel, exactly like a TCP stream would.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

use fastjoin_core::protocol::{InstanceMsg, RouteRequest};

/// Simulated time in microseconds.
pub type SimTime = u64;

/// A component endpoint for channel bookkeeping.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Endpoint {
    /// The dispatching component.
    Dispatcher,
    /// The monitor of group `0` (R) or `1` (S).
    Monitor(usize),
    /// Join instance `(group, index)`.
    Instance(usize, usize),
}

/// Events the simulator processes.
#[derive(Debug)]
pub enum Event {
    /// Pull the next workload tuple into the dispatcher.
    Arrival,
    /// Message delivery to a join instance.
    Delivery {
        /// Group index (0 = R-storing, 1 = S-storing).
        group: usize,
        /// Instance index within the group.
        dest: usize,
        /// The message.
        msg: InstanceMsg,
    },
    /// A routing update arriving at the dispatcher.
    RouteAtDispatcher {
        /// Group whose table changes.
        group: usize,
        /// The request.
        req: RouteRequest,
    },
    /// An instance finished its in-service tuple.
    ServiceDone {
        /// Group index.
        group: usize,
        /// Instance index.
        dest: usize,
    },
    /// Re-check an instance for startable work (used after pauses).
    Wake {
        /// Group index.
        group: usize,
        /// Instance index.
        dest: usize,
    },
    /// Periodic monitor sampling.
    MonitorTick,
}

struct Entry {
    time: SimTime,
    seq: u64,
    event: Event,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Entry {}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Entry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

/// Min-heap of events ordered by `(time, insertion seq)` — deterministic
/// and stable for simultaneous events.
#[derive(Default)]
pub struct EventQueue {
    heap: BinaryHeap<Reverse<Entry>>,
    next_seq: u64,
}

impl EventQueue {
    /// Creates an empty queue.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `event` at `time`.
    pub fn push(&mut self, time: SimTime, event: Event) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse(Entry { time, seq, event }));
    }

    /// Pops the earliest event.
    pub fn pop(&mut self) -> Option<(SimTime, Event)> {
        self.heap.pop().map(|Reverse(e)| (e.time, e.event))
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

/// Enforces FIFO delivery per channel: each send's delivery time is clamped
/// to at least the previously scheduled delivery on the same channel.
#[derive(Debug, Default)]
pub struct ChannelClock {
    last: HashMap<(Endpoint, Endpoint), SimTime>,
}

impl ChannelClock {
    /// Creates a clock with all channels idle.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Reserves a delivery slot on `src → dst` no earlier than `earliest`;
    /// returns the actual delivery time.
    pub fn send(&mut self, src: Endpoint, dst: Endpoint, earliest: SimTime) -> SimTime {
        let slot = self.last.entry((src, dst)).or_insert(0);
        let t = earliest.max(*slot);
        *slot = t;
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queue_orders_by_time() {
        let mut q = EventQueue::new();
        q.push(30, Event::MonitorTick);
        q.push(10, Event::Arrival);
        q.push(20, Event::Wake { group: 0, dest: 0 });
        let times: Vec<SimTime> = std::iter::from_fn(|| q.pop().map(|(t, _)| t)).collect();
        assert_eq!(times, vec![10, 20, 30]);
    }

    #[test]
    fn simultaneous_events_keep_insertion_order() {
        let mut q = EventQueue::new();
        q.push(
            5,
            Event::Delivery { group: 0, dest: 1, msg: InstanceMsg::RouteUpdated { epoch: 1 } },
        );
        q.push(
            5,
            Event::Delivery { group: 0, dest: 1, msg: InstanceMsg::RouteUpdated { epoch: 2 } },
        );
        let first = q.pop().unwrap().1;
        let second = q.pop().unwrap().1;
        let epoch_of = |e: Event| match e {
            Event::Delivery { msg: InstanceMsg::RouteUpdated { epoch }, .. } => epoch,
            _ => panic!("unexpected event"),
        };
        assert_eq!(epoch_of(first), 1);
        assert_eq!(epoch_of(second), 2);
    }

    #[test]
    fn channel_clock_enforces_fifo() {
        let mut c = ChannelClock::new();
        let a = Endpoint::Instance(0, 0);
        let b = Endpoint::Instance(0, 1);
        // A slow first message (big payload)...
        let t1 = c.send(a, b, 1000);
        // ...followed by a fast one sent later but with less delay.
        let t2 = c.send(a, b, 500);
        assert_eq!(t1, 1000);
        assert_eq!(t2, 1000, "second send must not overtake the first");
        // Other channels are unaffected.
        let t3 = c.send(b, a, 500);
        assert_eq!(t3, 500);
    }

    #[test]
    fn channel_clock_advances_monotonically() {
        let mut c = ChannelClock::new();
        let a = Endpoint::Dispatcher;
        let b = Endpoint::Instance(1, 3);
        let mut last = 0;
        for earliest in [10, 20, 15, 30, 25] {
            let t = c.send(a, b, earliest);
            assert!(t >= last);
            last = t;
        }
    }
}
