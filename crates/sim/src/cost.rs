//! Service-cost model for the simulated join instances.
//!
//! The paper's *load model* (Eq. 1) charges a probing tuple with work
//! proportional to the total tuples stored on the instance ("it should be
//! compared with all the tuples of stream R stored in I_{R-i}", §III-B),
//! and the monitor keeps using exactly that model for its decisions. The
//! *service* cost of the default model, however, is
//! [`CostKind::HashProbe`]: cost proportional to the probe key's bucket
//! `|R_ik|`, like the hash index a real implementation (BiStream on
//! Storm) uses. The distinction matters for reproducing the paper's own
//! baseline ordering: under literal nested-loop service cost,
//! BiStream-ContRand's probe fan-out would multiply total work by the
//! subgroup size and the paper's Fig. 3 ordering (FastJoin > ContRand >
//! BiStream) could not hold. [`CostKind::NestedLoop`] remains available as
//! the `ablation_cost_model` bench.
//!
//! All costs are in microseconds of simulated time.

use fastjoin_core::instance::Work;

/// Which quantity drives per-probe comparison cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CostKind {
    /// Probe cost ∝ `|R_i|` (the paper's model).
    NestedLoop,
    /// Probe cost ∝ `|R_ik|` (hash-index model).
    HashProbe,
}

/// The full cost model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Comparison cost driver.
    pub kind: CostKind,
    /// Cost of storing one tuple, µs.
    pub store_cost: f64,
    /// Fixed overhead per probe, µs.
    pub probe_base: f64,
    /// Cost per stored tuple compared, µs.
    pub per_comparison: f64,
    /// Cost per result pair emitted, µs.
    pub per_match: f64,
    /// One-way message latency between any two components, µs.
    pub network_latency: f64,
    /// Extra transfer time per migrated tuple, µs (on top of the base
    /// network latency of the migration message).
    pub migration_per_tuple: f64,
    /// Key-selection pause per key examined, µs (`O(K log K)` is modeled
    /// linearly; the log factor is far below the noise floor).
    pub selection_per_key: f64,
    /// Fixed per-message channel overhead, µs, amortized across the
    /// message's batch (see [`CostModel::message_overhead_us`]). Zero by
    /// default so unbatched simulations reproduce the historical numbers
    /// bit-for-bit; the runtime's batched-vs-unbatched bench is the
    /// empirical counterpart.
    pub per_message: f64,
    /// Modeled dispatcher shard count, mirroring the runtime's
    /// `RuntimeConfig::dispatcher_shards`: `N` shard threads drain the
    /// spout → dispatcher channel concurrently, so the fixed per-message
    /// overhead is further amortized `N` ways (see
    /// [`CostModel::message_overhead_us`]). 1 — the default, matching the
    /// single-threaded dispatcher — reproduces the historical numbers
    /// bit-for-bit.
    pub dispatch_shards: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            kind: CostKind::HashProbe,
            store_cost: 5.0,
            probe_base: 2.0,
            per_comparison: 25.0,
            per_match: 25.0,
            network_latency: 200.0,
            migration_per_tuple: 0.2,
            selection_per_key: 0.05,
            per_message: 0.0,
            dispatch_shards: 1,
        }
    }
}

impl CostModel {
    /// A model with the paper's literal nested-loop probe costs
    /// (ablation; see the module docs).
    #[must_use]
    pub fn nested_loop() -> Self {
        CostModel { kind: CostKind::NestedLoop, ..CostModel::default() }
    }

    /// Service time of one processed tuple, µs.
    #[must_use]
    pub fn service_us(&self, work: &Work) -> f64 {
        match work {
            Work::Store { .. } => self.store_cost,
            Work::Probe { stored_total, bucket, matches, .. } => {
                let compared = match self.kind {
                    CostKind::NestedLoop => *stored_total,
                    CostKind::HashProbe => *bucket,
                };
                self.probe_base
                    + self.per_comparison * compared as f64
                    + self.per_match * *matches as f64
            }
        }
    }

    /// Pause imposed on the migration source while the selector runs over
    /// `keys` candidate keys, µs.
    #[must_use]
    pub fn selection_us(&self, keys: usize) -> f64 {
        self.selection_per_key * keys as f64
    }

    /// Transfer delay for a migration payload of `tuples` tuples, µs
    /// (added to the base network latency).
    #[must_use]
    pub fn migration_us(&self, tuples: u64) -> f64 {
        self.migration_per_tuple * tuples as f64
    }

    /// Per-tuple share of the fixed per-message channel overhead when
    /// tuples ride in batches of `batch_size`: the whole message costs
    /// `per_message` µs once, so each of its tuples carries
    /// `per_message / batch_size`. With `batch_size = 1` the tuple pays
    /// the full overhead — the unbatched baseline the runtime bench
    /// compares against. Sharding the dispatcher
    /// ([`CostModel::dispatch_shards`]) amortizes the same overhead a
    /// second way: `N` shard threads pay for messages concurrently, so the
    /// serialized per-tuple share every tuple observes drops to
    /// `per_message / (batch_size · N)`.
    #[must_use]
    pub fn message_overhead_us(&self, batch_size: u64) -> f64 {
        self.per_message / (batch_size.max(1) * self.dispatch_shards.max(1)) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastjoin_core::tuple::Tuple;

    fn probe_work(stored_total: u64, bucket: u64, matches: u64) -> Work {
        Work::Probe { tuple: Tuple::s(1, 0, 0), stored_total, bucket, matches }
    }

    #[test]
    fn store_cost_is_flat() {
        let m = CostModel::default();
        let w = Work::Store { tuple: Tuple::r(1, 0, 0) };
        assert_eq!(m.service_us(&w), m.store_cost);
    }

    #[test]
    fn nested_loop_scales_with_total_store() {
        let m = CostModel::nested_loop();
        let small = m.service_us(&probe_work(100, 1, 0));
        let large = m.service_us(&probe_work(10_000, 1, 0));
        assert!(large > small);
        let expected = m.probe_base + m.per_comparison * 10_000.0;
        assert!((large - expected).abs() < 1e-9);
    }

    #[test]
    fn hash_probe_scales_with_bucket_only() {
        let m = CostModel::default();
        let a = m.service_us(&probe_work(1_000_000, 10, 0));
        let b = m.service_us(&probe_work(100, 10, 0));
        assert_eq!(a, b, "total store size must not matter for hash probes");
    }

    #[test]
    fn matches_add_emission_cost() {
        let m = CostModel::default();
        let without = m.service_us(&probe_work(100, 5, 0));
        let with = m.service_us(&probe_work(100, 5, 20));
        assert!((with - without - 20.0 * m.per_match).abs() < 1e-9);
    }

    #[test]
    fn message_overhead_amortizes_across_the_batch() {
        let m = CostModel { per_message: 50.0, ..CostModel::default() };
        assert_eq!(m.message_overhead_us(1), 50.0);
        assert_eq!(m.message_overhead_us(10), 5.0);
        assert_eq!(m.message_overhead_us(0), 50.0, "degenerate batch size clamps to 1");
        let free = CostModel::default();
        assert_eq!(free.message_overhead_us(1), 0.0, "overhead is off by default");
    }

    #[test]
    fn message_overhead_amortizes_across_dispatcher_shards() {
        let m = CostModel { per_message: 50.0, dispatch_shards: 2, ..CostModel::default() };
        assert_eq!(m.message_overhead_us(1), 25.0, "2 shards halve the serialized share");
        assert_eq!(m.message_overhead_us(10), 2.5, "batching and sharding compose");
        let degenerate =
            CostModel { per_message: 50.0, dispatch_shards: 0, ..CostModel::default() };
        assert_eq!(degenerate.message_overhead_us(1), 50.0, "shard count clamps to 1");
        assert_eq!(
            CostModel::default().dispatch_shards,
            1,
            "default is the single-threaded dispatcher"
        );
    }

    #[test]
    fn migration_and_selection_scale_linearly() {
        let m = CostModel::default();
        assert_eq!(m.migration_us(0), 0.0);
        assert!((m.migration_us(1000) - 1000.0 * m.migration_per_tuple).abs() < 1e-9);
        assert!((m.selection_us(500) - 500.0 * m.selection_per_key).abs() < 1e-9);
    }
}
