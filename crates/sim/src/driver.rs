//! The discrete-event simulation driver.
//!
//! [`Simulation`] wires the FastJoin core components (dispatcher, join
//! instances, monitors) to the event queue of [`crate::event`] with the
//! service/network costs of [`crate::cost`]. Each join instance is a
//! single-server queue: it serves one tuple at a time, its service time is
//! given by the cost model, and its input queue is the instance's own
//! pending queue.
//!
//! Two Storm-realistic behaviours matter for reproducing the paper's
//! curves:
//!
//! * **Ingest timestamping** — the paper's shuffler "assigns timestamps
//!   to tuples" at ingest (§V). The driver therefore rewrites each tuple's
//!   `ts` to the simulated ingest time; the workload's own timestamps only
//!   define the *offered* arrival schedule. Windows and latency are thus
//!   measured in one coherent clock.
//! * **Backpressure** — like Storm's `max.spout.pending`, ingest stalls
//!   while any instance's pending queue exceeds `queue_cap`. Offered load
//!   above system capacity then yields throughput = capacity (what the
//!   paper's "maximize the input rate" methodology measures) instead of
//!   unbounded queues.
//!
//! The simulation is fully deterministic for a given workload and seed.

use fastjoin_baselines::{build_partitioners, SystemKind};
use fastjoin_core::config::FastJoinConfig;
use fastjoin_core::dispatcher::{Dispatch, Dispatcher};
use fastjoin_core::instance::{JoinInstance, Work};
use fastjoin_core::metrics::{MetricsRegistry, RunMetrics};
use fastjoin_core::monitor::{Monitor, MonitorStats};
use fastjoin_core::protocol::{Effects, InstanceMsg};
use fastjoin_core::selection::{make_selector, KeySelector};
use fastjoin_core::tuple::{Side, Tuple};

use crate::cost::CostModel;
use crate::event::{ChannelClock, Endpoint, Event, EventQueue, SimTime};

/// Simulation parameters.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Which system to simulate.
    pub system: SystemKind,
    /// FastJoin/cluster configuration (instances, Θ, selector, window, …).
    pub fastjoin: FastJoinConfig,
    /// Service and network cost model.
    pub cost: CostModel,
    /// Metric bucket width, µs (the paper reports per second).
    pub report_period: u64,
    /// Hard stop of simulated time, µs.
    pub max_time: SimTime,
    /// Backpressure threshold: ingest stalls while any instance's pending
    /// queue exceeds this many tuples.
    pub queue_cap: usize,
    /// How long a stalled ingest waits before retrying, µs.
    pub backpressure_retry: SimTime,
    /// Record per-instance load time series of the R group (Fig. 1c).
    pub record_instance_loads: bool,
    /// Migration-round deadline, simulated µs. A round in flight longer
    /// than this is aborted by the monitor watchdog and rolled back
    /// (routes reverted, moved tuples returned). 0 disables the watchdog.
    pub round_timeout: SimTime,
    /// Fault injection: silently discard the first N `MigrateCmd`
    /// triggers, leaving the monitor with a round in flight that no
    /// instance will ever complete — the stalled-round scenario the
    /// watchdog exists for.
    pub drop_migrate_cmds: u64,
    /// Modeled data-plane batch size: each tuple's delivery pays
    /// `cost.per_message / batch_size` of the fixed per-message channel
    /// overhead (see [`CostModel::message_overhead_us`]), mirroring the
    /// runtime's `RuntimeConfig::batch_size`. 1 = unbatched.
    pub batch_size: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            system: SystemKind::FastJoin,
            fastjoin: FastJoinConfig::default(),
            cost: CostModel::default(),
            report_period: 1_000_000,
            max_time: 60_000_000,
            queue_cap: 2048,
            backpressure_retry: 1_000,
            record_instance_loads: false,
            round_timeout: 0,
            drop_migrate_cmds: 0,
            batch_size: 1,
        }
    }
}

/// Everything measured during a run.
#[derive(Debug)]
pub struct SimReport {
    /// Throughput/latency/imbalance series (see
    /// [`fastjoin_core::metrics::RunMetrics`]).
    pub metrics: RunMetrics,
    /// Total join result pairs emitted.
    pub results_total: u64,
    /// Total workload tuples ingested.
    pub tuples_ingested: u64,
    /// Simulated time at termination, µs.
    pub duration: SimTime,
    /// Monitor statistics per group (`None` for static systems).
    pub monitor_stats: [Option<MonitorStats>; 2],
    /// Per-instance load series of the R group (only when
    /// `record_instance_loads`).
    pub instance_loads: Vec<fastjoin_core::metrics::TimeSeries>,
    /// Tuples ingested per report period.
    pub ingest_series: fastjoin_core::metrics::TimeSeries,
    /// Total stored tuples (R group) sampled at monitor ticks.
    pub stored_series: fastjoin_core::metrics::TimeSeries,
    /// Total pending tuples (both groups) sampled at monitor ticks.
    pub pending_series: fastjoin_core::metrics::TimeSeries,
    /// Per-instance stored-tuple counts at termination (R group).
    pub final_stored_r: Vec<u64>,
    /// Per-instance total busy time, µs: `[R group, S group]`.
    pub busy_us: [Vec<u64>; 2],
    /// Completed migration-round spans per group, oldest first (empty for
    /// static systems). Clock fields are simulated microseconds.
    pub migration_spans: [Vec<fastjoin_core::metrics::MigrationSpan>; 2],
    /// Per-stage latency attribution, mirroring the runtime's `stage.*`
    /// histograms: `stage.queue_wait_us` (delivery → service start),
    /// `stage.probe_us` / `stage.store_us` (modelled service time), and
    /// `stage.mig_pause_us` (key-selection pauses, §III-C). All values are
    /// simulated microseconds.
    pub stages: MetricsRegistry,
}

impl SimReport {
    /// Average throughput (results/period) over `[from, to)` report
    /// periods.
    #[must_use]
    pub fn avg_throughput(&self, from: usize, to: usize) -> f64 {
        self.metrics.throughput.mean_sum_over(from, to)
    }

    /// Average per-probe latency, µs, over `[from, to)` report periods.
    #[must_use]
    pub fn avg_latency_us(&self, from: usize, to: usize) -> f64 {
        self.metrics.latency.mean_value_over(from, to)
    }

    /// Average sampled imbalance over `[from, to)` report periods.
    #[must_use]
    pub fn avg_imbalance(&self, from: usize, to: usize) -> f64 {
        self.metrics.imbalance.mean_value_over(from, to)
    }

    /// Number of report periods covered.
    #[must_use]
    pub fn periods(&self) -> usize {
        self.metrics.throughput.len()
    }

    /// Total migrations triggered (both groups).
    #[must_use]
    pub fn migrations(&self) -> u64 {
        self.monitor_stats.iter().flatten().map(|s| s.triggered).sum()
    }

    /// The report as a JSON tree, sharing the runtime report's key names
    /// (`duration_us`, `latency_us`, `throughput`, `groups[*].monitor`,
    /// `groups[*].imbalance`, `groups[*].migration_spans`) so downstream
    /// tooling can read either engine's output. Clock fields are simulated
    /// microseconds; the LI series covers the R group only (Fig. 11), so
    /// it appears under `groups[0]`.
    #[must_use]
    pub fn to_json(&self) -> fastjoin_core::json::Json {
        use fastjoin_core::json::Json;
        use fastjoin_core::metrics::MigrationSpan;
        let group = |g: usize| -> Json {
            let stats = self.monitor_stats[g].as_ref().map(|s| {
                Json::obj(vec![
                    ("triggered", Json::uint(s.triggered)),
                    ("effective", Json::uint(s.effective)),
                    ("abandoned", Json::uint(s.abandoned)),
                    ("aborted", Json::uint(s.aborted)),
                    ("tuples_moved", Json::uint(s.tuples_moved)),
                    ("keys_moved", Json::uint(s.keys_moved)),
                ])
            });
            let li = (g == 0).then(|| self.metrics.imbalance.to_json());
            Json::obj(vec![
                ("monitor", stats.into()),
                ("imbalance", li.into()),
                (
                    "migration_spans",
                    Json::arr(self.migration_spans[g].iter().map(MigrationSpan::to_json)),
                ),
            ])
        };
        Json::obj(vec![
            ("duration_us", Json::uint(self.duration)),
            ("tuples_ingested", Json::uint(self.tuples_ingested)),
            ("results_total", Json::uint(self.results_total)),
            ("latency_us", self.metrics.latency_hist.to_json()),
            ("throughput", self.metrics.throughput.to_json()),
            ("groups", Json::arr(vec![group(0), group(1)])),
            ("stages", self.stages.to_json()),
        ])
    }
}

struct Server {
    inst: JoinInstance,
    busy: bool,
    /// Total service time accumulated, µs (utilization diagnostics).
    busy_us: u64,
    pause_until: SimTime,
    /// Join results produced by the in-service tuple, emitted at
    /// completion.
    in_service_matches: u64,
    /// `(seq, ingest ts)` of the in-service tuple if it was a probe.
    in_service_probe: Option<(u64, u64)>,
}

struct SimGroup {
    servers: Vec<Server>,
    monitor: Option<Monitor>,
    selector: Box<dyn KeySelector + Send>,
}

/// The simulation state machine.
pub struct Simulation<W: Iterator<Item = Tuple>> {
    cfg: SimConfig,
    workload: W,
    next_tuple: Option<Tuple>,
    dispatcher: Dispatcher,
    groups: [SimGroup; 2],
    queue: EventQueue,
    channels: ChannelClock,
    now: SimTime,
    fx: Effects,
    scratch: Dispatch,
    metrics: RunMetrics,
    results_total: u64,
    tuples_ingested: u64,
    /// Outstanding probe fan-out counts by dispatch seq. A probe's join is
    /// complete — and its latency measured — only when every instance it
    /// was fanned out to has processed it (the straggler penalty of
    /// broadcast-style strategies).
    probe_fanout: std::collections::HashMap<u64, u32>,
    instance_loads: Vec<fastjoin_core::metrics::TimeSeries>,
    ingest_series: fastjoin_core::metrics::TimeSeries,
    stored_series: fastjoin_core::metrics::TimeSeries,
    pending_series: fastjoin_core::metrics::TimeSeries,
    /// Epochs whose route flip reached the dispatcher, per group. An
    /// abort request for such an epoch is refused — the round is past its
    /// point of no return and must complete forward.
    routed_epochs: [std::collections::HashSet<u64>; 2],
    /// Epochs aborted before their route flip arrived, per group. A late
    /// `RouteAtDispatcher` for one of these is staged and immediately
    /// reverted (the version still advances) and no `RouteUpdated` is
    /// sent — the source instance sees `MigAbort` instead.
    aborted_epochs: [std::collections::HashSet<u64>; 2],
    /// Remaining `MigrateCmd` triggers to drop (fault injection).
    drop_triggers: u64,
    /// Per-stage latency histograms (see [`SimReport::stages`]).
    stages: MetricsRegistry,
}

impl<W: Iterator<Item = Tuple>> Simulation<W> {
    /// Creates a simulation over a timestamp-ordered workload.
    ///
    /// # Panics
    /// Panics if the configuration is invalid.
    #[must_use]
    pub fn new(cfg: SimConfig, mut workload: W) -> Self {
        cfg.fastjoin.validate().expect("invalid configuration");
        let n = cfg.fastjoin.instances_per_group;
        let (r_part, s_part, dynamic) = build_partitioners(cfg.system, &cfg.fastjoin);
        let make_group = |side: Side, seed_offset: u64| SimGroup {
            servers: (0..n)
                .map(|i| {
                    let mut inst = JoinInstance::new(i, side, cfg.fastjoin.window);
                    // The simulator measures counts and timing only.
                    inst.set_emit_pairs(false);
                    inst.set_migration_mode(cfg.fastjoin.migration_mode);
                    Server {
                        inst,
                        busy: false,
                        busy_us: 0,
                        pause_until: 0,
                        in_service_matches: 0,
                        in_service_probe: None,
                    }
                })
                .collect(),
            monitor: dynamic
                .then(|| Monitor::new(n, cfg.fastjoin.theta, cfg.fastjoin.migration_cooldown)),
            selector: make_selector(&FastJoinConfig {
                seed: cfg.fastjoin.seed.wrapping_add(seed_offset),
                ..cfg.fastjoin.clone()
            }),
        };
        let mut groups = [make_group(Side::R, 0), make_group(Side::S, 1)];
        for g in &mut groups {
            if let Some(m) = g.monitor.as_mut() {
                m.set_round_timeout(cfg.round_timeout);
            }
        }
        let mut queue = EventQueue::new();
        let next_tuple = workload.next();
        if let Some(t) = &next_tuple {
            queue.push(t.ts, Event::Arrival);
        }
        queue.push(cfg.fastjoin.monitor_period, Event::MonitorTick);
        let instance_loads = if cfg.record_instance_loads {
            (0..n).map(|_| fastjoin_core::metrics::TimeSeries::new(cfg.report_period)).collect()
        } else {
            Vec::new()
        };
        let drop_triggers = cfg.drop_migrate_cmds;
        Simulation {
            metrics: RunMetrics::new(cfg.report_period),
            dispatcher: Dispatcher::new(r_part, s_part),
            groups,
            queue,
            channels: ChannelClock::new(),
            now: 0,
            fx: Effects::new(),
            scratch: Dispatch::default(),
            results_total: 0,
            tuples_ingested: 0,
            probe_fanout: std::collections::HashMap::new(),
            instance_loads,
            ingest_series: fastjoin_core::metrics::TimeSeries::new(cfg.report_period),
            stored_series: fastjoin_core::metrics::TimeSeries::new(cfg.report_period),
            pending_series: fastjoin_core::metrics::TimeSeries::new(cfg.report_period),
            next_tuple,
            workload,
            cfg,
            routed_epochs: Default::default(),
            aborted_epochs: Default::default(),
            drop_triggers,
            stages: MetricsRegistry::new(),
        }
    }

    /// Runs to completion (workload exhausted and system drained, or
    /// `max_time` reached) and returns the report.
    #[must_use]
    pub fn run(mut self) -> SimReport {
        while let Some((time, event)) = self.queue.pop() {
            if time > self.cfg.max_time {
                self.now = self.cfg.max_time;
                break;
            }
            self.now = time;
            match event {
                Event::Arrival => self.on_arrival(),
                Event::Delivery { group, dest, msg } => self.on_delivery(group, dest, msg),
                Event::RouteAtDispatcher { group, req } => {
                    let side = if group == 0 { Side::R } else { Side::S };
                    let supported = self.dispatcher.stage_route(side, &req);
                    assert!(supported, "migration on a non-migratable partitioner");
                    if self.aborted_epochs[group].contains(&req.epoch) {
                        // The round was aborted before its flip arrived:
                        // advance the version past the stage, restore the
                        // committed routes, and send no RouteUpdated — the
                        // source already holds (or will hold) MigAbort.
                        self.dispatcher.revert_route(side, req.epoch);
                        continue;
                    }
                    self.routed_epochs[group].insert(req.epoch);
                    let delivery = self.channels.send(
                        Endpoint::Dispatcher,
                        Endpoint::Instance(group, req.source),
                        self.now + self.cfg.cost.network_latency as SimTime,
                    );
                    self.queue.push(
                        delivery,
                        Event::Delivery {
                            group,
                            dest: req.source,
                            msg: InstanceMsg::RouteUpdated { epoch: req.epoch },
                        },
                    );
                }
                Event::ServiceDone { group, dest } => self.on_service_done(group, dest),
                Event::Wake { group, dest } => self.try_start(group, dest),
                Event::MonitorTick => self.on_monitor_tick(),
            }
        }
        self.finish()
    }

    fn finish(self) -> SimReport {
        let n = self.cfg.fastjoin.instances_per_group;
        SimReport {
            metrics: self.metrics,
            results_total: self.results_total,
            tuples_ingested: self.tuples_ingested,
            duration: self.now,
            monitor_stats: [
                self.groups[0].monitor.as_ref().map(Monitor::stats),
                self.groups[1].monitor.as_ref().map(Monitor::stats),
            ],
            instance_loads: self.instance_loads,
            ingest_series: self.ingest_series,
            stored_series: self.stored_series,
            pending_series: self.pending_series,
            final_stored_r: (0..n).map(|i| self.groups[0].servers[i].inst.store().len()).collect(),
            busy_us: [
                self.groups[0].servers.iter().map(|s| s.busy_us).collect(),
                self.groups[1].servers.iter().map(|s| s.busy_us).collect(),
            ],
            migration_spans: [
                self.groups[0].monitor.as_ref().map(|m| m.spans().to_vec()).unwrap_or_default(),
                self.groups[1].monitor.as_ref().map(|m| m.spans().to_vec()).unwrap_or_default(),
            ],
            stages: self.stages,
        }
    }

    fn on_arrival(&mut self) {
        if self.next_tuple.is_none() {
            return;
        }
        // Storm-style backpressure: stall the spout while any instance is
        // over its queue cap.
        if self.is_congested() {
            self.queue.push(self.now + self.cfg.backpressure_retry, Event::Arrival);
            return;
        }
        let mut tuple = self.next_tuple.take().expect("checked above");
        let offered_ts = tuple.ts;
        // The shuffler assigns the tuple's timestamp at ingest (§V).
        tuple.ts = self.now;
        self.tuples_ingested += 1;
        self.ingest_series.record(self.now, 1.0);
        self.dispatcher.dispatch_into(tuple, &mut self.scratch);
        let t = self.scratch.tuple;
        let own = t.side.index();
        let opp = t.side.opposite().index();
        // Each delivery pays its amortized share of the fixed per-message
        // channel overhead on top of the one-way network latency.
        let latency = (self.cfg.cost.network_latency
            + self.cfg.cost.message_overhead_us(self.cfg.batch_size))
            as SimTime;
        let store_dest = self.scratch.store_dest;
        let delivery = self.channels.send(
            Endpoint::Dispatcher,
            Endpoint::Instance(own, store_dest),
            self.now + latency,
        );
        self.queue.push(
            delivery,
            Event::Delivery { group: own, dest: store_dest, msg: InstanceMsg::Data(t) },
        );
        let probe_dests = std::mem::take(&mut self.scratch.probe_dests);
        self.probe_fanout.insert(t.seq, probe_dests.len() as u32);
        for &dest in &probe_dests {
            let delivery = self.channels.send(
                Endpoint::Dispatcher,
                Endpoint::Instance(opp, dest),
                self.now + latency,
            );
            self.queue
                .push(delivery, Event::Delivery { group: opp, dest, msg: InstanceMsg::Data(t) });
        }
        self.scratch.probe_dests = probe_dests;

        // Schedule the next workload arrival. The offered schedule is a
        // *rate*, not absolute times: a spout that was throttled resumes
        // pulling at the offered pace, it does not replay the backlog in a
        // burst. Pace the next arrival by the offered inter-arrival gap
        // relative to the actual ingest time.
        self.next_tuple = self.workload.next();
        if let Some(next) = &self.next_tuple {
            let gap = next.ts.saturating_sub(offered_ts);
            self.queue.push(self.now + gap, Event::Arrival);
        }
    }

    fn on_delivery(&mut self, group: usize, dest: usize, msg: InstanceMsg) {
        // Key-selection work pauses the source (§III-C: "an instance must
        // stop executing the store and join operations").
        let selection_pause = if matches!(msg, InstanceMsg::MigrateCmd { .. }) {
            let keys = self.groups[group].servers[dest].inst.key_stats().len();
            let pause = self.cfg.cost.selection_us(keys) as SimTime;
            self.stages.histogram_record("stage.mig_pause_us", pause);
            pause
        } else {
            0
        };
        {
            let g = &mut self.groups[group];
            // The simulator delivers in event-time order per channel, so a
            // protocol violation means the protocol itself is broken.
            #[allow(clippy::panic)]
            g.servers[dest]
                .inst
                .handle(msg, g.selector.as_mut(), self.cfg.fastjoin.theta_gap, &mut self.fx)
                .unwrap_or_else(|e| panic!("protocol violation: {e}"));
            if selection_pause > 0 {
                let server = &mut g.servers[dest];
                server.pause_until = server.pause_until.max(self.now + selection_pause);
            }
        }
        self.flush_effects(group, dest);
        self.try_start(group, dest);
    }

    /// Routes the effects produced by instance `(group, src)`.
    fn flush_effects(&mut self, group: usize, src: usize) {
        debug_assert!(self.fx.joined.is_empty(), "join results only appear in service");
        let latency = self.cfg.cost.network_latency as SimTime;
        for (to, msg) in self.fx.sends.drain(..) {
            // Migration payloads take longer to transfer.
            let extra = match &msg {
                InstanceMsg::MigStore { tuples, .. } | InstanceMsg::MigForward { tuples, .. } => {
                    self.cfg.cost.migration_us(tuples.len() as u64) as SimTime
                }
                _ => 0,
            };
            let delivery = self.channels.send(
                Endpoint::Instance(group, src),
                Endpoint::Instance(group, to),
                self.now + latency + extra,
            );
            self.queue.push(delivery, Event::Delivery { group, dest: to, msg });
        }
        for req in self.fx.route_requests.drain(..) {
            let delivery = self.channels.send(
                Endpoint::Instance(group, src),
                Endpoint::Dispatcher,
                self.now + latency,
            );
            self.queue.push(delivery, Event::RouteAtDispatcher { group, req });
        }
        for done in self.fx.migration_done.drain(..) {
            // Completion notifications matter only for round bookkeeping;
            // deliver them to the monitor immediately (a latency here only
            // lengthens the cooldown).
            self.metrics.migrations += 1;
            self.metrics.tuples_migrated += done.tuples_moved;
            let epoch = done.epoch;
            self.groups[group]
                .monitor
                .as_mut()
                .expect("migration completed in a static group")
                .on_migration_done(done, self.now);
            // The round is closed either way: commit the staged flip (a
            // no-op for aborted/abandoned rounds) and retire the epoch.
            // Aborted epochs stay tombstoned: the rollback ack is
            // delivered instantly here while the stale RouteRequest may
            // still be in flight, and it must find the tombstone.
            let side = if group == 0 { Side::R } else { Side::S };
            self.dispatcher.commit_route(side, epoch);
            self.routed_epochs[group].remove(&epoch);
        }
    }

    /// Starts service on the next pending tuple if the instance is free.
    fn try_start(&mut self, group: usize, dest: usize) {
        let server = &mut self.groups[group].servers[dest];
        if server.busy || server.inst.pending_len() == 0 {
            return;
        }
        if self.now < server.pause_until {
            self.queue.push(server.pause_until, Event::Wake { group, dest });
            return;
        }
        let work = server.inst.process_next(&mut self.fx).expect("pending_len > 0 implies work");
        let cost = self.cfg.cost.service_us(&work).max(0.01) as SimTime;
        // Ingest → service-start minus the constant network hop is the
        // tuple's queue wait at this instance (dispatch is instantaneous in
        // the simulator's cost model).
        let net = self.cfg.cost.network_latency as SimTime;
        match work {
            Work::Store { tuple } => {
                let wait = self.now.saturating_sub(tuple.ts).saturating_sub(net);
                self.stages.histogram_record("stage.queue_wait_us", wait);
                self.stages.histogram_record("stage.store_us", cost.max(1));
                server.in_service_matches = 0;
                server.in_service_probe = None;
            }
            Work::Probe { tuple, matches, .. } => {
                let wait = self.now.saturating_sub(tuple.ts).saturating_sub(net);
                self.stages.histogram_record("stage.queue_wait_us", wait);
                self.stages.histogram_record("stage.probe_us", cost.max(1));
                server.in_service_matches = matches;
                server.in_service_probe = Some((tuple.seq, tuple.ts));
            }
        }
        server.busy = true;
        server.busy_us += cost.max(1);
        debug_assert!(self.fx.joined.is_empty(), "sim instances do not materialize pairs");
        self.queue.push(self.now + cost.max(1), Event::ServiceDone { group, dest });
    }

    fn on_service_done(&mut self, group: usize, dest: usize) {
        let server = &mut self.groups[group].servers[dest];
        server.busy = false;
        let matches = server.in_service_matches;
        let probe = server.in_service_probe.take();
        server.in_service_matches = 0;
        if matches > 0 {
            self.metrics.throughput.record(self.now, matches as f64);
            self.results_total += matches;
        }
        if let Some((seq, ts)) = probe {
            // The probe's join completes when its last fan-out part does.
            let done = {
                let left = self
                    .probe_fanout
                    .get_mut(&seq)
                    .expect("probe completion without fan-out record");
                *left -= 1;
                *left == 0
            };
            if done {
                self.probe_fanout.remove(&seq);
                let lat = self.now.saturating_sub(ts);
                self.metrics.latency.record(self.now, lat as f64);
                self.metrics.latency_hist.record(lat);
            }
        }
        self.try_start(group, dest);
    }

    fn on_monitor_tick(&mut self) {
        // Sample per-instance loads BEFORE report collection freezes and
        // resets the period counters.
        if self.cfg.record_instance_loads {
            for (i, series) in self.instance_loads.iter_mut().enumerate() {
                series.record(self.now, self.groups[0].servers[i].inst.load().load());
            }
        }
        let mut triggers = Vec::new();
        let mut aborts = Vec::new();
        for (gi, g) in self.groups.iter_mut().enumerate() {
            for server in &mut g.servers {
                server.inst.collect_expired();
            }
            let Some(monitor) = g.monitor.as_mut() else { continue };
            for (i, server) in g.servers.iter_mut().enumerate() {
                monitor.on_report(i, server.inst.take_load_report());
            }
            // The LI series plots the R group only, for a like-for-like
            // comparison across systems (Fig. 11 shows one line each).
            if gi == 0 {
                self.metrics.imbalance.record(self.now, monitor.imbalance());
            }
            if let Some(trigger) = monitor.maybe_trigger(self.now) {
                if self.drop_triggers > 0 {
                    // Fault injection: the MigrateCmd is lost. The monitor
                    // keeps the round in flight; only the watchdog (or the
                    // end of the run) can close it.
                    self.drop_triggers -= 1;
                } else {
                    triggers.push((gi, trigger));
                }
            }
            // Round-timeout watchdog (fires at most once per deadline).
            if let Some(req) = monitor.check_deadline(self.now) {
                aborts.push((gi, req));
            }
        }
        // Resolve abort requests at the dispatcher, the serialization
        // point: a round whose route already flipped is refused (it must
        // complete forward); otherwise the epoch is tombstoned and the
        // source is told to roll back.
        for (gi, req) in aborts {
            let refused = self.routed_epochs[gi].contains(&req.epoch);
            if !refused {
                self.aborted_epochs[gi].insert(req.epoch);
            }
            self.groups[gi]
                .monitor
                .as_mut()
                .expect("abort request from a static group")
                .on_abort_outcome(req.epoch, !refused, self.now);
            if !refused {
                let delivery = self.channels.send(
                    Endpoint::Dispatcher,
                    Endpoint::Instance(gi, req.source),
                    self.now + self.cfg.cost.network_latency as SimTime,
                );
                self.queue.push(
                    delivery,
                    Event::Delivery {
                        group: gi,
                        dest: req.source,
                        msg: InstanceMsg::MigAbort { epoch: req.epoch },
                    },
                );
            }
        }
        // Static systems still report an imbalance series (Fig. 11 plots
        // BiStream's LI): compute it from a shadow load table, consuming
        // the period counters exactly like a monitor would.
        if self.groups[0].monitor.is_none() {
            let li = self.shadow_imbalance();
            self.metrics.imbalance.record(self.now, li);
        }
        let stored_r: u64 = self.groups[0].servers.iter().map(|s| s.inst.store().len()).sum();
        let pending: u64 = self
            .groups
            .iter()
            .flat_map(|g| g.servers.iter())
            .map(|s| s.inst.pending_len() as u64)
            .sum();
        self.stored_series.record(self.now, stored_r as f64);
        self.pending_series.record(self.now, pending as f64);
        let latency = self.cfg.cost.network_latency as SimTime;
        for (gi, trigger) in triggers {
            let delivery = self.channels.send(
                Endpoint::Monitor(gi),
                Endpoint::Instance(gi, trigger.source),
                self.now + latency,
            );
            self.queue.push(
                delivery,
                Event::Delivery { group: gi, dest: trigger.source, msg: trigger.msg },
            );
        }
        // Keep ticking while there is anything left to do. An in-flight
        // round with the watchdog armed counts as work: its deadline only
        // fires on a tick, and a stalled round (dropped MigrateCmd) has no
        // other event keeping the queue alive. `max_time` still bounds it.
        let watchdog_armed = self.cfg.round_timeout > 0
            && self
                .groups
                .iter()
                .any(|g| g.monitor.as_ref().is_some_and(Monitor::migration_in_flight));
        if self.next_tuple.is_some() || !self.queue.is_empty() || watchdog_armed {
            self.queue.push(self.now + self.cfg.fastjoin.monitor_period, Event::MonitorTick);
        }
    }

    fn is_congested(&self) -> bool {
        let cap = self.cfg.queue_cap;
        self.groups.iter().any(|g| g.servers.iter().any(|s| s.inst.pending_len() > cap))
    }

    /// Imbalance of the R group computed directly from instance state (for
    /// systems without a monitor). Consumes the period counters exactly
    /// like a monitor report collection would.
    fn shadow_imbalance(&mut self) -> f64 {
        let loads: Vec<f64> = self.groups[0]
            .servers
            .iter_mut()
            .map(|s| s.inst.take_load_report().effective_load())
            .collect();
        let max = loads.iter().cloned().fold(f64::MIN, f64::max);
        let min = loads.iter().cloned().fold(f64::MAX, f64::min);
        max / min
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base_cfg(n: usize) -> SimConfig {
        SimConfig {
            fastjoin: FastJoinConfig {
                instances_per_group: n,
                monitor_period: 100_000,
                migration_cooldown: 200_000,
                theta: 2.0,
                ..FastJoinConfig::default()
            },
            max_time: 30_000_000,
            // Correctness tests use a cheap cost model so full-history
            // joins drain well within max_time.
            cost: CostModel {
                store_cost: 0.2,
                probe_base: 0.5,
                per_comparison: 0.01,
                per_match: 0.01,
                ..CostModel::default()
            },
            ..SimConfig::default()
        }
    }

    fn uniform_workload(tuples: u64, keys: u64, rate_per_sec: u64) -> Vec<Tuple> {
        let gap = 1_000_000 / rate_per_sec;
        (0..tuples)
            .flat_map(|i| {
                let ts = i * gap;
                [Tuple::r(i % keys, ts, 0), Tuple::s(i % keys, ts, 0)]
            })
            .collect()
    }

    #[test]
    fn simulation_is_complete_and_exactly_once() {
        let cfg = base_cfg(4);
        let workload = uniform_workload(500, 10, 5000);
        let report = Simulation::new(cfg, workload.into_iter()).run();
        // 10 keys × 50 × 50 pairs.
        assert_eq!(report.results_total, 10 * 50 * 50);
        assert_eq!(report.tuples_ingested, 1000);
    }

    #[test]
    fn simulation_is_deterministic() {
        let run = || {
            let report =
                Simulation::new(base_cfg(4), uniform_workload(300, 7, 2000).into_iter()).run();
            (report.results_total, report.duration, report.metrics.throughput.sums().to_vec())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn latency_is_recorded_for_probes() {
        let report = Simulation::new(base_cfg(2), uniform_workload(200, 5, 2000).into_iter()).run();
        assert!(report.metrics.latency_hist.count() > 0);
        assert!(report.metrics.latency_hist.mean().unwrap() > 0.0);
    }

    #[test]
    fn batching_amortizes_per_message_overhead() {
        // With a real per-message cost, every tuple in a batched run pays
        // only 1/batch of the overhead on delivery, so end-to-end latency
        // must drop (by ~per_message · (1 - 1/batch) µs) and the join must
        // be untouched.
        let run = |batch: u64| {
            let mut cfg = base_cfg(4);
            cfg.cost.per_message = 50.0;
            cfg.batch_size = batch;
            Simulation::new(cfg, uniform_workload(500, 10, 5000).into_iter()).run()
        };
        let unbatched = run(1);
        let batched = run(64);
        assert_eq!(batched.results_total, unbatched.results_total, "batching changed the join");
        let mean = |r: &SimReport| r.metrics.latency_hist.mean().unwrap();
        assert!(
            mean(&batched) + 40.0 < mean(&unbatched),
            "amortized overhead must cut delivery latency: {} vs {} µs",
            mean(&batched),
            mean(&unbatched)
        );
        // per_message defaults to 0, so historical configs are unaffected
        // by the batch knob at all.
        let free = Simulation::new(base_cfg(4), uniform_workload(500, 10, 5000).into_iter()).run();
        let free_batched = {
            let mut cfg = base_cfg(4);
            cfg.batch_size = 64;
            Simulation::new(cfg, uniform_workload(500, 10, 5000).into_iter()).run()
        };
        assert_eq!(free.duration, free_batched.duration);
        assert_eq!(free.results_total, free_batched.results_total);
        assert_eq!(mean(&free), mean(&free_batched));
    }

    #[test]
    fn skewed_workload_triggers_migrations_under_fastjoin() {
        let mut cfg = base_cfg(4);
        cfg.fastjoin.theta = 1.5;
        // One hot key carries half the traffic; rest uniform.
        let mut tuples = Vec::new();
        let mut ts = 0u64;
        for i in 0..4000u64 {
            ts += 100;
            let key = if i % 2 == 0 { 999 } else { i % 37 };
            tuples.push(Tuple::r(key, ts, 0));
            tuples.push(Tuple::s(key, ts, 0));
        }
        let report = Simulation::new(cfg, tuples.into_iter()).run();
        assert!(report.migrations() > 0, "hot key must trigger migration");
        // Completeness across migrations.
        let mut expected = 0u64;
        let mut counts = std::collections::HashMap::new();
        for i in 0..4000u64 {
            let key = if i % 2 == 0 { 999 } else { i % 37 };
            *counts.entry(key).or_insert(0u64) += 1;
        }
        for (_, c) in counts {
            expected += c * c;
        }
        assert_eq!(report.results_total, expected);
    }

    #[test]
    fn spans_and_json_cover_migrated_runs() {
        let mut cfg = base_cfg(4);
        cfg.fastjoin.theta = 1.5;
        let mut tuples = Vec::new();
        let mut ts = 0u64;
        for i in 0..4000u64 {
            ts += 100;
            let key = if i % 2 == 0 { 999 } else { i % 37 };
            tuples.push(Tuple::r(key, ts, 0));
            tuples.push(Tuple::s(key, ts, 0));
        }
        let report = Simulation::new(cfg, tuples.into_iter()).run();
        assert!(report.migrations() > 0);
        let spans: Vec<_> = report.migration_spans.iter().flatten().collect();
        assert_eq!(spans.len() as u64, report.migrations(), "one span per completed round");
        for s in &spans {
            assert!(s.completed_at >= s.triggered_at);
            assert!(s.imbalance_at_trigger > 1.5, "rounds only trigger above theta");
            assert_eq!(s.effective, s.keys_moved > 0);
        }
        let rendered = report.to_json().to_string_compact();
        for key in ["\"duration_us\"", "\"latency_us\"", "\"migration_spans\"", "\"imbalance\""] {
            assert!(rendered.contains(key), "missing {key}");
        }
    }

    #[test]
    fn stage_attribution_covers_migrated_runs() {
        let mut cfg = base_cfg(4);
        cfg.fastjoin.theta = 1.5;
        let (tuples, _) = skewed_workload(4000);
        let report = Simulation::new(cfg, tuples.into_iter()).run();
        assert!(report.migrations() > 0);
        // Every service started attributes a queue wait and a service-time
        // sample; key selection pauses show up once per triggered round.
        let hist = |name: &str| match report.stages.get(name) {
            Some(fastjoin_core::metrics::MetricValue::Histogram(h)) => h.count(),
            other => panic!("{name} missing or not a histogram: {other:?}"),
        };
        assert_eq!(hist("stage.store_us") + hist("stage.probe_us"), hist("stage.queue_wait_us"));
        assert!(hist("stage.probe_us") >= report.tuples_ingested, "every tuple probes");
        assert!(hist("stage.mig_pause_us") >= report.migrations());
        let rendered = report.to_json().to_string_compact();
        assert!(rendered.contains("\"stages\""));
        assert!(rendered.contains("stage.queue_wait_us"));
    }

    #[test]
    fn bistream_never_migrates() {
        let mut cfg = base_cfg(4);
        cfg.system = SystemKind::BiStream;
        let report = Simulation::new(cfg, uniform_workload(500, 3, 2000).into_iter()).run();
        assert_eq!(report.migrations(), 0);
        assert!(report.monitor_stats[0].is_none());
        assert!(!report.metrics.imbalance.is_empty(), "shadow LI must be recorded");
    }

    #[test]
    fn max_time_truncates_the_run() {
        let mut cfg = base_cfg(2);
        cfg.max_time = 1_000_000; // 1 s
        let workload = uniform_workload(100_000, 11, 1000); // 100 s of data
        let report = Simulation::new(cfg, workload.into_iter()).run();
        assert!(report.duration <= 1_000_000);
        assert!(report.tuples_ingested < 200_000);
    }

    #[test]
    fn instance_load_series_recorded_when_enabled() {
        let mut cfg = base_cfg(3);
        cfg.record_instance_loads = true;
        let report = Simulation::new(cfg, uniform_workload(500, 9, 1000).into_iter()).run();
        assert_eq!(report.instance_loads.len(), 3);
        assert!(report.instance_loads.iter().any(|s| !s.is_empty()));
    }

    fn skewed_workload(tuples: u64) -> (Vec<Tuple>, u64) {
        let mut out = Vec::new();
        let mut ts = 0u64;
        let mut counts = std::collections::HashMap::new();
        for i in 0..tuples {
            ts += 100;
            let key = if i % 2 == 0 { 999 } else { i % 37 };
            out.push(Tuple::r(key, ts, 0));
            out.push(Tuple::s(key, ts, 0));
            *counts.entry(key).or_insert(0u64) += 1;
        }
        let expected = counts.values().map(|c| c * c).sum();
        (out, expected)
    }

    #[test]
    fn dropped_migrate_cmd_is_rolled_back_by_the_watchdog() {
        let mut cfg = base_cfg(4);
        cfg.fastjoin.theta = 1.5;
        cfg.round_timeout = 150_000;
        cfg.drop_migrate_cmds = 1;
        let (tuples, expected) = skewed_workload(12_000);
        let report = Simulation::new(cfg, tuples.into_iter()).run();
        let stats = report.monitor_stats[0].expect("FastJoin has a monitor");
        assert!(stats.aborted >= 1, "the stalled round must be aborted: {stats:?}");
        // The lost MigrateCmd moved nothing, and later rounds still fire:
        // completeness holds across the abort.
        assert_eq!(report.results_total, expected);
        assert!(stats.effective > 0, "later rounds must still complete: {stats:?}");
    }

    #[test]
    fn slow_network_rounds_abort_and_preserve_completeness() {
        let mut cfg = base_cfg(4);
        cfg.fastjoin.theta = 1.5;
        // The deadline (150 ms) expires long before the route request can
        // cross a 0.5 s network, so in-flight rounds abort and roll back
        // their already-transferred tuples.
        cfg.cost.network_latency = 500_000.0;
        cfg.round_timeout = 150_000;
        cfg.max_time = 120_000_000;
        let (tuples, expected) = skewed_workload(4000);
        let report = Simulation::new(cfg, tuples.into_iter()).run();
        let stats = report.monitor_stats[0].expect("FastJoin has a monitor");
        assert!(stats.triggered > 0, "hot key must trigger rounds");
        assert!(stats.aborted > 0, "slow rounds must hit the deadline: {stats:?}");
        assert_eq!(report.results_total, expected, "rollback must not lose or duplicate joins");
    }

    #[test]
    fn empty_workload_terminates_immediately() {
        let report = Simulation::new(base_cfg(2), std::iter::empty()).run();
        assert_eq!(report.results_total, 0);
        assert_eq!(report.tuples_ingested, 0);
    }
}
