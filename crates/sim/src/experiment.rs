//! Parameterized experiment runners shared by the figure benches.
//!
//! Each paper figure varies one knob (instances, dataset size, threshold Θ,
//! skew group) over the ride-hailing or synthetic workload and compares the
//! systems of [`SystemKind::headline`]. These helpers build the workload,
//! run the simulation, and reduce the report to the figure's quantities,
//! skipping a warmup prefix like the paper does ("we only record the stable
//! statistics after the application runs for around three minutes").

use fastjoin_baselines::SystemKind;
use fastjoin_core::config::{FastJoinConfig, SelectorKind, WindowConfig};
use fastjoin_core::tuple::Tuple;
use fastjoin_datagen::ridehail::{RideHailConfig, RideHailGen};
use fastjoin_datagen::synthetic::{SyntheticConfig, SyntheticGen};

use crate::cost::CostModel;
use crate::driver::{SimConfig, SimReport, Simulation};

/// Fraction of report periods treated as warmup and excluded from
/// averages.
pub const WARMUP_FRAC: f64 = 0.2;

/// Common knobs across experiments; `Default` mirrors the paper's DiDi
/// defaults (48 instances, Θ = 2.2, 30 GB).
#[derive(Debug, Clone)]
pub struct ExperimentParams {
    /// Join instances per group.
    pub instances: usize,
    /// Load-imbalance threshold Θ.
    pub theta: f64,
    /// Dataset scale in "GB" (see [`RideHailConfig::scaled_to_gb`]).
    pub gb: u64,
    /// Hard stop in simulated seconds.
    pub max_secs: u64,
    /// Key-selection algorithm for FastJoin.
    pub selector: SelectorKind,
    /// Cost model.
    pub cost: CostModel,
    /// Workload seed.
    pub seed: u64,
}

impl Default for ExperimentParams {
    fn default() -> Self {
        ExperimentParams {
            instances: 48,
            theta: 2.2,
            gb: 30,
            max_secs: 60,
            selector: SelectorKind::GreedyFit,
            cost: CostModel::default(),
            seed: 0xD1D1,
        }
    }
}

impl ExperimentParams {
    fn fastjoin_config(&self) -> FastJoinConfig {
        FastJoinConfig {
            instances_per_group: self.instances,
            theta: self.theta,
            selector: self.selector,
            monitor_period: 500_000,       // 0.5 s sampling
            migration_cooldown: 1_000_000, // 1 s between rounds
            // A 2 s sliding window (4 × 0.5 s sub-windows): the store
            // reaches a steady state, so throughput/latency timelines are
            // stable like the paper's Figs. 3–4 (on-demand dispatch only
            // needs recent taxi positions anyway).
            window: Some(WindowConfig { sub_windows: 4, sub_window_len: 500_000 }),
            ..FastJoinConfig::default()
        }
    }

    /// Full simulator configuration for one system (public so benches can
    /// tweak fields like `record_instance_loads`).
    #[must_use]
    pub fn sim_config(&self, system: SystemKind) -> SimConfig {
        SimConfig {
            system,
            fastjoin: self.fastjoin_config(),
            cost: self.cost,
            report_period: 1_000_000,
            max_time: self.max_secs * 1_000_000,
            queue_cap: 512,
            backpressure_retry: 1_000,
            record_instance_loads: false,
            ..SimConfig::default()
        }
    }
}

/// The reduced quantities the figures plot.
#[derive(Debug, Clone)]
pub struct Summary {
    /// System label.
    pub system: &'static str,
    /// Mean results/second over the post-warmup window.
    pub throughput: f64,
    /// Mean per-probe latency over the post-warmup window, milliseconds.
    pub latency_ms: f64,
    /// Mean sampled imbalance over the post-warmup window.
    pub imbalance: f64,
    /// Migration rounds triggered.
    pub migrations: u64,
    /// Total results over the whole run.
    pub results_total: u64,
}

/// Reduces a report to a [`Summary`], skipping the warmup prefix.
#[must_use]
pub fn summarize(system: SystemKind, report: &SimReport) -> Summary {
    let periods = report.periods();
    let from = ((periods as f64) * WARMUP_FRAC) as usize;
    let to = periods;
    Summary {
        system: system.label(),
        throughput: report.avg_throughput(from, to),
        latency_ms: report.avg_latency_us(from, to) / 1000.0,
        imbalance: report.avg_imbalance(from, to),
        migrations: report.migrations(),
        results_total: report.results_total,
    }
}

/// Offered order-stream rate, tuples/s. Offered load is set well above
/// system capacity so that, with backpressure, measured throughput equals
/// capacity — the paper's "maximize the input rate" methodology (§V).
pub const ORDER_RATE: f64 = 10_000.0;
/// Offered track-stream rate, tuples/s.
pub const TRACK_RATE: f64 = 290_000.0;

/// Builds the ride-hailing workload for a parameter set.
#[must_use]
pub fn ridehail_workload(params: &ExperimentParams) -> RideHailGen {
    RideHailGen::new(&RideHailConfig {
        seed: params.seed,
        order_rate: ORDER_RATE,
        track_rate: TRACK_RATE,
        ..RideHailConfig::scaled_to_gb(params.gb)
    })
}

/// Runs `system` over the ride-hailing workload.
#[must_use]
pub fn run_ridehail(system: SystemKind, params: &ExperimentParams) -> SimReport {
    run_with(system, params, ridehail_workload(params))
}

/// Runs `system` over the synthetic group `Gxy`.
#[must_use]
pub fn run_synthetic(system: SystemKind, params: &ExperimentParams, x: u8, y: u8) -> SimReport {
    let cfg = SyntheticConfig { seed: params.seed ^ 0x5E, ..SyntheticConfig::group(x, y) };
    run_with(system, params, SyntheticGen::new(&cfg))
}

/// Runs `system` over an arbitrary timestamp-ordered workload.
#[must_use]
pub fn run_with(
    system: SystemKind,
    params: &ExperimentParams,
    workload: impl Iterator<Item = Tuple>,
) -> SimReport {
    Simulation::new(params.sim_config(system), workload).run()
}

/// Runs the paper's three headline systems and returns their summaries in
/// [`SystemKind::headline`] order.
#[must_use]
pub fn run_headline(params: &ExperimentParams) -> Vec<Summary> {
    SystemKind::headline()
        .into_iter()
        .map(|sys| summarize(sys, &run_ridehail(sys, params)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> ExperimentParams {
        ExperimentParams { instances: 8, gb: 2, max_secs: 8, ..ExperimentParams::default() }
    }

    #[test]
    fn ridehail_run_produces_results_for_all_systems() {
        for sys in SystemKind::headline() {
            let report = run_ridehail(sys, &quick());
            let s = summarize(sys, &report);
            assert!(s.results_total > 0, "{} produced no results", s.system);
            assert!(s.throughput > 0.0, "{} zero throughput", s.system);
            assert!(s.latency_ms > 0.0, "{} zero latency", s.system);
        }
    }

    #[test]
    fn fastjoin_beats_bistream_on_the_skewed_workload() {
        let params = ExperimentParams { instances: 8, gb: 4, max_secs: 15, theta: 1.8, ..quick() };
        let fj = summarize(SystemKind::FastJoin, &run_ridehail(SystemKind::FastJoin, &params));
        let bi = summarize(SystemKind::BiStream, &run_ridehail(SystemKind::BiStream, &params));
        assert!(fj.migrations > 0, "FastJoin must migrate on skewed data");
        assert!(
            fj.throughput >= bi.throughput,
            "FastJoin {} < BiStream {}",
            fj.throughput,
            bi.throughput
        );
    }

    #[test]
    fn synthetic_group_runs() {
        let params = ExperimentParams { instances: 4, max_secs: 4, ..quick() };
        let report = run_synthetic(SystemKind::BiStream, &params, 1, 1);
        assert!(report.results_total > 0);
    }

    #[test]
    fn summaries_are_deterministic() {
        let a = summarize(SystemKind::FastJoin, &run_ridehail(SystemKind::FastJoin, &quick()));
        let b = summarize(SystemKind::FastJoin, &run_ridehail(SystemKind::FastJoin, &quick()));
        assert_eq!(a.results_total, b.results_total);
        assert_eq!(a.throughput, b.throughput);
        assert_eq!(a.migrations, b.migrations);
    }
}
