//! CSV export of simulation reports, for external plotting.
//!
//! One row per report period with the three quantities every figure of the
//! paper plots: throughput (results/period), mean latency (µs), and the
//! degree of load imbalance.

use std::io::{self, Write};

use crate::driver::SimReport;

/// Writes `second,throughput,latency_us,imbalance` rows for the whole run.
///
/// # Errors
/// Propagates I/O errors from the writer.
pub fn write_report_csv<W: Write>(out: W, report: &SimReport) -> io::Result<()> {
    let mut w = io::BufWriter::new(out);
    writeln!(w, "second,throughput,latency_us,imbalance")?;
    let thpt = report.metrics.throughput.sums();
    let lat = report.metrics.latency.means();
    let li = report.metrics.imbalance.means();
    let periods = thpt.len().max(lat.len()).max(li.len());
    let fmt_opt = |v: Option<f64>| v.map_or(String::new(), |x| format!("{x:.3}"));
    for p in 0..periods {
        writeln!(
            w,
            "{},{},{},{}",
            p,
            thpt.get(p).map_or(String::new(), |v| format!("{v:.0}")),
            fmt_opt(lat.get(p).copied().flatten()),
            fmt_opt(li.get(p).copied().flatten()),
        )?;
    }
    w.flush()
}

/// Writes the per-instance load series (Fig. 1c data) as
/// `second,instance,load` rows. Requires the run to have been made with
/// `record_instance_loads`.
///
/// # Errors
/// Propagates I/O errors from the writer.
pub fn write_instance_loads_csv<W: Write>(out: W, report: &SimReport) -> io::Result<()> {
    let mut w = io::BufWriter::new(out);
    writeln!(w, "second,instance,load")?;
    for (i, series) in report.instance_loads.iter().enumerate() {
        for (p, v) in series.means().iter().enumerate() {
            if let Some(v) = v {
                writeln!(w, "{p},{i},{v:.3}")?;
            }
        }
    }
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{SimConfig, Simulation};
    use fastjoin_core::config::FastJoinConfig;
    use fastjoin_core::tuple::Tuple;

    fn tiny_report(record_loads: bool) -> SimReport {
        let cfg = SimConfig {
            fastjoin: FastJoinConfig {
                instances_per_group: 2,
                monitor_period: 100_000,
                ..FastJoinConfig::default()
            },
            record_instance_loads: record_loads,
            ..SimConfig::default()
        };
        let tuples = (0..2_000u64).flat_map(|i| {
            let ts = i * 500;
            [Tuple::r(i % 5, ts, 0), Tuple::s(i % 5, ts, 0)]
        });
        Simulation::new(cfg, tuples).run()
    }

    #[test]
    fn report_csv_has_header_and_rows() {
        let report = tiny_report(false);
        let mut buf = Vec::new();
        write_report_csv(&mut buf, &report).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let mut lines = text.lines();
        assert_eq!(lines.next(), Some("second,throughput,latency_us,imbalance"));
        let rows: Vec<&str> = lines.collect();
        assert!(!rows.is_empty());
        // Every row: 4 comma-separated fields, first is the period index.
        for (i, row) in rows.iter().enumerate() {
            let fields: Vec<&str> = row.split(',').collect();
            assert_eq!(fields.len(), 4, "{row}");
            assert_eq!(fields[0], i.to_string());
        }
        // At least one row carries a throughput number.
        assert!(rows.iter().any(|r| !r.split(',').nth(1).unwrap().is_empty()));
    }

    #[test]
    fn instance_loads_csv_lists_all_instances() {
        let report = tiny_report(true);
        let mut buf = Vec::new();
        write_instance_loads_csv(&mut buf, &report).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.starts_with("second,instance,load\n"));
        for inst in ["0", "1"] {
            assert!(
                text.lines().any(|l| l.split(',').nth(1) == Some(inst)),
                "instance {inst} missing"
            );
        }
    }

    #[test]
    fn instance_loads_csv_is_empty_without_recording() {
        let report = tiny_report(false);
        let mut buf = Vec::new();
        write_instance_loads_csv(&mut buf, &report).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(text.lines().count(), 1, "header only");
    }
}
