//! # fastjoin-sim
//!
//! A deterministic discrete-event simulator for the FastJoin reproduction.
//! Join instances are single-server queues driven by the cost model of
//! [`cost`] (the paper's nested-loop load model by default); messages
//! travel over FIFO channels with network latency ([`event`]); the driver
//! ([`driver`]) collects per-second throughput, latency, and imbalance
//! series — the quantities every figure of the paper's evaluation plots.
//!
//! [`experiment`] provides the parameterized runners the figure benches
//! call.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod cost;
pub mod csv;
pub mod driver;
pub mod event;
pub mod experiment;

pub use cost::{CostKind, CostModel};
pub use csv::{write_instance_loads_csv, write_report_csv};
pub use driver::{SimConfig, SimReport, Simulation};
pub use experiment::{run_headline, run_ridehail, run_synthetic, ExperimentParams, Summary};
