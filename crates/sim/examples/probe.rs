use fastjoin_baselines::SystemKind;
use fastjoin_core::config::SelectorKind;
use fastjoin_sim::experiment::*;
use fastjoin_sim::CostModel;

fn main() {
    let params = ExperimentParams {
        instances: 48,
        gb: 30,
        max_secs: 45,
        theta: 2.2,
        selector: SelectorKind::GreedyFit,
        cost: CostModel::default(),
        seed: 0xD1D1,
    };
    for sys in [SystemKind::FastJoin, SystemKind::BiStreamContRand, SystemKind::BiStream] {
        let report = run_ridehail(sys, &params);
        let s = summarize(sys, &report);
        println!(
            "{}: thpt={:.0}/s lat={:.2}ms li_avg={:.2} mig={} results={} dur={}s ingested={}",
            s.system,
            s.throughput,
            s.latency_ms,
            s.imbalance,
            s.migrations,
            s.results_total,
            report.duration / 1_000_000,
            report.tuples_ingested
        );
        let li: Vec<String> = report
            .metrics
            .imbalance
            .means()
            .iter()
            .map(|m| m.map_or("-".into(), |v| format!("{v:.2}")))
            .collect();
        println!("  LI: {}", li.join(" "));
        let th: Vec<String> =
            report.metrics.throughput.sums().iter().map(|v| format!("{:.0}", v / 1000.0)).collect();
        println!("  thpt(k/s): {}", th.join(" "));
        let ing: Vec<String> =
            report.ingest_series.sums().iter().map(|v| format!("{:.0}", v / 1000.0)).collect();
        println!("  ingest(k/s): {}", ing.join(" "));
        let st: Vec<String> = report
            .stored_series
            .means()
            .iter()
            .map(|m| m.map_or("-".into(), |v| format!("{:.0}", v / 1000.0)))
            .collect();
        println!("  storedR(k): {}", st.join(" "));
        for st in report.monitor_stats.iter().flatten() {
            println!(
                "  monitor: triggered={} effective={} abandoned={} keys={} tuples={}",
                st.triggered, st.effective, st.abandoned, st.keys_moved, st.tuples_moved
            );
        }
        let lat: Vec<String> = report
            .metrics
            .latency
            .means()
            .iter()
            .map(|m| m.map_or("-".into(), |v| format!("{:.1}", v / 1000.0)))
            .collect();
        println!("  lat(ms): {}", lat.join(" "));
        for (g, name) in [(0, "R"), (1, "S")] {
            let mut b = report.busy_us[g].clone();
            b.sort_unstable();
            let sum: u64 = b.iter().sum();
            println!(
                "  busy{} (s): min={:.1} med={:.1} max={:.1} mean={:.1} util_max={:.2}",
                name,
                b[0] as f64 / 1e6,
                b[b.len() / 2] as f64 / 1e6,
                b[b.len() - 1] as f64 / 1e6,
                sum as f64 / 1e6 / b.len() as f64,
                b[b.len() - 1] as f64 / report.duration as f64
            );
        }
    }
}
