//! BiStream's **ContRand** hybrid routing (Lin et al., SIGMOD'15 §5;
//! referenced by the FastJoin paper as "BiStream-ContRand").
//!
//! ContRand splits a join group's instances into subgroups of size `g`.
//! A key is hashed to a subgroup (*content-sensitive*), but within the
//! subgroup each stored tuple lands on a random instance (*random*). A
//! probe must then visit every instance of the key's subgroup. This caps a
//! hot key's storage imbalance at the subgroup granularity in exchange for
//! a `g×` probe fan-out — a *static* compromise, which is exactly what the
//! FastJoin paper criticizes: "it is essentially a simple static load
//! distribution strategy" that cannot react to dynamic workloads.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use fastjoin_core::hash::partition_salted;
use fastjoin_core::partition::Partitioner;
use fastjoin_core::tuple::Key;

/// ContRand partitioner for one join group.
#[derive(Debug, Clone)]
pub struct ContRandPartitioner {
    instances: usize,
    subgroup_size: usize,
    subgroups: usize,
    salt: u64,
    rng: StdRng,
}

impl ContRandPartitioner {
    /// Creates a partitioner over `n` instances with subgroups of
    /// `subgroup_size`.
    ///
    /// # Panics
    /// Panics unless `subgroup_size` divides `n` and both are nonzero.
    #[must_use]
    pub fn new(n: usize, subgroup_size: usize, salt: u64, seed: u64) -> Self {
        assert!(n > 0 && subgroup_size > 0, "empty group or subgroup");
        assert!(
            n.is_multiple_of(subgroup_size),
            "subgroup size {subgroup_size} must divide the group size {n}"
        );
        ContRandPartitioner {
            instances: n,
            subgroup_size,
            subgroups: n / subgroup_size,
            salt,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Subgroup index of a key.
    #[inline]
    fn subgroup_of(&self, key: Key) -> usize {
        partition_salted(key, self.salt, self.subgroups)
    }

    /// Instances of the subgroup containing `key`, in index order.
    fn members_of(&self, key: Key) -> std::ops::Range<usize> {
        let sg = self.subgroup_of(key);
        sg * self.subgroup_size..(sg + 1) * self.subgroup_size
    }

    /// Configured subgroup size.
    #[must_use]
    pub fn subgroup_size(&self) -> usize {
        self.subgroup_size
    }
}

impl Partitioner for ContRandPartitioner {
    fn store_route(&mut self, key: Key) -> usize {
        let members = self.members_of(key);
        self.rng.gen_range(members)
    }

    fn probe_route(&mut self, key: Key, out: &mut Vec<usize>) {
        out.clear();
        out.extend(self.members_of(key));
    }

    fn apply_migration(&mut self, _keys: &[Key], _target: usize) -> bool {
        false // static strategy: no dynamic load balancing
    }

    fn instances(&self) -> usize {
        self.instances
    }

    fn name(&self) -> &'static str {
        "contrand"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn store_lands_inside_probe_set() {
        let mut p = ContRandPartitioner::new(16, 4, 0, 1);
        let mut probes = Vec::new();
        for key in 0..500u64 {
            let store = p.store_route(key);
            p.probe_route(key, &mut probes);
            assert_eq!(probes.len(), 4);
            assert!(probes.contains(&store), "store {store} outside probe set {probes:?}");
        }
    }

    #[test]
    fn hot_key_storage_spreads_over_subgroup() {
        let mut p = ContRandPartitioner::new(8, 4, 0, 2);
        let mut counts = [0u64; 8];
        for _ in 0..4000 {
            counts[p.store_route(7)] += 1;
        }
        let used: Vec<usize> =
            counts.iter().enumerate().filter(|(_, &c)| c > 0).map(|(i, _)| i).collect();
        assert_eq!(used.len(), 4, "hot key must spread over exactly its subgroup");
        for &i in &used {
            assert!(counts[i] > 700, "instance {i} got {} of 4000", counts[i]);
        }
    }

    #[test]
    fn probe_set_is_stable_per_key() {
        let mut p = ContRandPartitioner::new(12, 3, 0, 3);
        let mut a = Vec::new();
        let mut b = Vec::new();
        p.probe_route(99, &mut a);
        p.probe_route(99, &mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn migration_is_unsupported() {
        let mut p = ContRandPartitioner::new(8, 2, 0, 4);
        assert!(!p.apply_migration(&[1], 0));
    }

    #[test]
    fn subgroup_size_one_degenerates_to_hash() {
        let mut p = ContRandPartitioner::new(8, 1, 0, 5);
        let mut probes = Vec::new();
        for key in 0..100 {
            let store = p.store_route(key);
            p.probe_route(key, &mut probes);
            assert_eq!(probes, vec![store]);
        }
    }

    #[test]
    #[should_panic(expected = "must divide")]
    fn rejects_nondividing_subgroup() {
        let _ = ContRandPartitioner::new(10, 4, 0, 0);
    }
}
