//! # fastjoin-baselines
//!
//! The comparison systems of the paper's evaluation, implemented on the
//! same join-biclique substrate as FastJoin so that only the partitioning
//! strategy differs:
//!
//! * **BiStream** — static hash partitioning, no load balancing
//!   ([`fastjoin_core::JoinCluster::bistream`]).
//! * **BiStream-ContRand** — [`contrand`]: hybrid subgroup routing.
//! * **Broadcast** — [`broadcast`]: round-robin storage, broadcast probes
//!   (the "random partitioning" strawman of the introduction).
//!
//! [`SystemKind`] + [`build_cluster`] give experiments a uniform way to
//! instantiate any of the four systems.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod broadcast;
pub mod contrand;

pub use broadcast::BroadcastPartitioner;
pub use contrand::ContRandPartitioner;

use fastjoin_core::biclique::JoinCluster;
use fastjoin_core::config::FastJoinConfig;
use fastjoin_core::partition::{HashPartitioner, Partitioner};
use fastjoin_core::tuple::Side;

/// Default ContRand subgroup size (divides the paper's 16/32/48/64
/// instance counts).
pub const DEFAULT_SUBGROUP: usize = 4;

/// The subgroup size [`build_partitioners`] uses for a group of `n`
/// instances: the largest divisor of `n` not exceeding
/// [`DEFAULT_SUBGROUP`].
#[must_use]
pub fn subgroup_for(n: usize) -> usize {
    (1..=DEFAULT_SUBGROUP.min(n)).rev().find(|s| n.is_multiple_of(*s)).unwrap_or(1)
}

/// The four systems compared in the evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SystemKind {
    /// FastJoin: hash partitioning + dynamic skew-aware migration.
    FastJoin,
    /// BiStream: static hash partitioning.
    BiStream,
    /// BiStream with ContRand hybrid routing.
    BiStreamContRand,
    /// Round-robin storage with broadcast probes.
    Broadcast,
}

impl SystemKind {
    /// The label used in the paper's figures.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            SystemKind::FastJoin => "FastJoin",
            SystemKind::BiStream => "BiStream",
            SystemKind::BiStreamContRand => "BiStream-ContRand",
            SystemKind::Broadcast => "Broadcast",
        }
    }

    /// The three systems of the headline comparison (Figs. 3–13).
    #[must_use]
    pub fn headline() -> [SystemKind; 3] {
        [SystemKind::FastJoin, SystemKind::BiStreamContRand, SystemKind::BiStream]
    }
}

/// Builds the two group partitioners for a system. Returns
/// `(r_group, s_group, dynamic)` where `dynamic` says whether the system
/// runs the monitoring component (dynamic load balancing).
///
/// # Panics
/// Panics (for ContRand) if [`DEFAULT_SUBGROUP`] does not divide
/// `cfg.instances_per_group` when the group is larger than the subgroup.
#[must_use]
#[allow(clippy::type_complexity)]
pub fn build_partitioners(
    kind: SystemKind,
    cfg: &FastJoinConfig,
) -> (Box<dyn Partitioner + Send>, Box<dyn Partitioner + Send>, bool) {
    let n = cfg.instances_per_group;
    match kind {
        SystemKind::FastJoin | SystemKind::BiStream => {
            let r = Box::new(HashPartitioner::new(n, Side::R.index() as u64));
            let s = Box::new(HashPartitioner::new(n, Side::S.index() as u64));
            (r, s, kind == SystemKind::FastJoin)
        }
        SystemKind::BiStreamContRand => {
            let sub = subgroup_for(n);
            let r =
                Box::new(ContRandPartitioner::new(n, sub, Side::R.index() as u64, cfg.seed ^ 0xC0));
            let s =
                Box::new(ContRandPartitioner::new(n, sub, Side::S.index() as u64, cfg.seed ^ 0xC1));
            (r, s, false)
        }
        SystemKind::Broadcast => {
            (Box::new(BroadcastPartitioner::new(n)), Box::new(BroadcastPartitioner::new(n)), false)
        }
    }
}

/// Builds a synchronous [`JoinCluster`] for the requested system.
///
/// # Panics
/// Panics if the configuration is invalid, or (for ContRand) if
/// [`DEFAULT_SUBGROUP`] does not divide `cfg.instances_per_group`.
#[must_use]
pub fn build_cluster(kind: SystemKind, cfg: FastJoinConfig) -> JoinCluster {
    let (r, s, dynamic) = build_partitioners(kind, &cfg);
    JoinCluster::with_partitioners(cfg, r, s, dynamic)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastjoin_core::tuple::{JoinedPair, Tuple};

    fn cfg(n: usize) -> FastJoinConfig {
        FastJoinConfig { instances_per_group: n, ..FastJoinConfig::default() }
    }

    fn workload() -> Vec<Tuple> {
        let mut tuples = Vec::new();
        for i in 0..300u64 {
            tuples.push(Tuple::r(i % 7, i, 0));
            tuples.push(Tuple::s(i % 7, i, 0));
        }
        tuples
    }

    fn expected_pairs() -> usize {
        // 7 keys; each key appears the same number of times on both sides.
        let mut total = 0;
        for k in 0..7u64 {
            let n = (0..300u64).filter(|i| i % 7 == k).count();
            total += n * n;
        }
        total
    }

    #[test]
    fn all_systems_produce_identical_complete_results() {
        let expected = expected_pairs();
        for kind in [
            SystemKind::FastJoin,
            SystemKind::BiStream,
            SystemKind::BiStreamContRand,
            SystemKind::Broadcast,
        ] {
            let mut cluster = build_cluster(kind, cfg(8));
            let results = cluster.run_to_completion(workload());
            assert_eq!(results.len(), expected, "{} result count", kind.label());
            let mut ids: Vec<_> = results.iter().map(JoinedPair::identity).collect();
            ids.sort_unstable();
            ids.dedup();
            assert_eq!(ids.len(), expected, "{} produced duplicates", kind.label());
        }
    }

    #[test]
    fn contrand_spreads_hot_key_storage() {
        let mut cluster = build_cluster(SystemKind::BiStreamContRand, cfg(8));
        // 1000 R tuples on one hot key.
        for i in 0..1000 {
            cluster.ingest(Tuple::r(42, i, 0));
        }
        cluster.pump();
        let stored: Vec<u64> = (0..8).map(|i| cluster.instance(Side::R, i).store().len()).collect();
        let nonzero = stored.iter().filter(|&&c| c > 0).count();
        assert_eq!(nonzero, DEFAULT_SUBGROUP, "hot key spread: {stored:?}");
    }

    #[test]
    fn bistream_concentrates_hot_key_storage() {
        let mut cluster = build_cluster(SystemKind::BiStream, cfg(8));
        for i in 0..1000 {
            cluster.ingest(Tuple::r(42, i, 0));
        }
        cluster.pump();
        let stored: Vec<u64> = (0..8).map(|i| cluster.instance(Side::R, i).store().len()).collect();
        let nonzero = stored.iter().filter(|&&c| c > 0).count();
        assert_eq!(nonzero, 1, "hash partitioning pins a key to one instance: {stored:?}");
    }

    #[test]
    fn broadcast_balances_storage_perfectly() {
        let mut cluster = build_cluster(SystemKind::Broadcast, cfg(4));
        for i in 0..400 {
            cluster.ingest(Tuple::r(42, i, 0));
        }
        cluster.pump();
        for i in 0..4 {
            assert_eq!(cluster.instance(Side::R, i).store().len(), 100);
        }
    }

    #[test]
    fn broadcast_probes_cost_group_size_times_more() {
        // One stored tuple per instance; a single probe is processed by
        // every instance (4 probe executions vs 1 for hash).
        let mut cluster = build_cluster(SystemKind::Broadcast, cfg(4));
        for i in 0..4 {
            cluster.ingest(Tuple::r(7, i, 0));
        }
        cluster.ingest(Tuple::s(7, 10, 0));
        cluster.pump();
        let probed: u64 = (0..4).map(|i| cluster.instance(Side::R, i).counters().probed).sum();
        assert_eq!(probed, 4, "the probe must be executed on all instances");
        assert_eq!(cluster.drain_results().len(), 4);
    }

    #[test]
    fn subgroup_always_divides() {
        for n in 1..=64 {
            let s = subgroup_for(n);
            assert!((1..=DEFAULT_SUBGROUP).contains(&s));
            assert_eq!(n % s, 0, "subgroup {s} for n={n}");
        }
        assert_eq!(subgroup_for(48), 4);
        assert_eq!(subgroup_for(6), 3);
        assert_eq!(subgroup_for(7), 1);
    }

    #[test]
    fn headline_list_matches_figures() {
        let labels: Vec<_> = SystemKind::headline().iter().map(|k| k.label()).collect();
        assert_eq!(labels, vec!["FastJoin", "BiStream-ContRand", "BiStream"]);
    }
}
