//! Random/broadcast partitioning (the "random partitioning strategy" of the
//! paper's introduction; architecturally the SplitJoin approach of Najafi
//! et al., USENIX ATC'16).
//!
//! Stored tuples are spread round-robin over all instances regardless of
//! key — perfect storage balance — but every probe must be broadcast to
//! every instance. Join-relevant work is therefore multiplied by the group
//! size, which is why the paper calls it wasteful for low-selectivity
//! (hash) joins.

use fastjoin_core::partition::Partitioner;
use fastjoin_core::tuple::Key;

/// Round-robin store / broadcast probe partitioner.
#[derive(Debug, Clone)]
pub struct BroadcastPartitioner {
    instances: usize,
    next: usize,
}

impl BroadcastPartitioner {
    /// Creates a partitioner over `n` instances.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    #[must_use]
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "a join group needs at least one instance");
        BroadcastPartitioner { instances: n, next: 0 }
    }
}

impl Partitioner for BroadcastPartitioner {
    fn store_route(&mut self, _key: Key) -> usize {
        let i = self.next;
        self.next = (self.next + 1) % self.instances;
        i
    }

    fn probe_route(&mut self, _key: Key, out: &mut Vec<usize>) {
        out.clear();
        out.extend(0..self.instances);
    }

    fn apply_migration(&mut self, _keys: &[Key], _target: usize) -> bool {
        false // storage is already perfectly balanced; nothing to migrate
    }

    fn instances(&self) -> usize {
        self.instances
    }

    fn name(&self) -> &'static str {
        "broadcast"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn store_is_perfectly_balanced() {
        let mut p = BroadcastPartitioner::new(4);
        let mut counts = vec![0u64; 4];
        for key in 0..400u64 {
            counts[p.store_route(key)] += 1;
        }
        assert_eq!(counts, vec![100; 4]);
    }

    #[test]
    fn probe_hits_every_instance() {
        let mut p = BroadcastPartitioner::new(6);
        let mut probes = Vec::new();
        p.probe_route(123, &mut probes);
        assert_eq!(probes, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn migration_is_unsupported() {
        let mut p = BroadcastPartitioner::new(4);
        assert!(!p.apply_migration(&[1], 2));
    }
}
