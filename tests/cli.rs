//! End-to-end tests of the `fastjoin-cli` binary (spawned as a process,
//! exactly as a user runs it).

use std::process::Command;

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_fastjoin-cli"))
}

fn run(args: &[&str]) -> (bool, String, String) {
    let out = cli().args(args).output().expect("spawn fastjoin-cli");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn census_reports_the_fig1_skew() {
    let (ok, stdout, _) =
        run(&["census", "--locations", "2000", "--orders", "40000", "--tracks", "160000"]);
    assert!(ok);
    assert!(stdout.contains("orders:"), "{stdout}");
    assert!(stdout.contains("tracks:"), "{stdout}");
    assert!(stdout.contains("80% of tuples in"), "{stdout}");
}

#[test]
fn simulate_runs_and_writes_csv() {
    let dir = std::env::temp_dir().join(format!("fjcli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let csv = dir.join("series.csv");
    let (ok, stdout, stderr) = run(&[
        "simulate",
        "--gb",
        "1",
        "--secs",
        "6",
        "--instances",
        "4",
        "--csv",
        csv.to_str().unwrap(),
    ]);
    assert!(ok, "stderr: {stderr}");
    assert!(stdout.contains("avg throughput"), "{stdout}");
    let text = std::fs::read_to_string(&csv).unwrap();
    assert!(text.starts_with("second,throughput,latency_us,imbalance"));
    assert!(text.lines().count() > 2, "{text}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn gen_then_replay_trace_round_trips() {
    let dir = std::env::temp_dir().join(format!("fjcli-trace-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let trace = dir.join("t.csv");
    let (ok, stdout, _) = run(&[
        "gen",
        "--out",
        trace.to_str().unwrap(),
        "--workload",
        "gxy",
        "--x",
        "0",
        "--y",
        "1",
    ]);
    assert!(ok);
    assert!(stdout.contains("wrote"), "{stdout}");
    let (ok, stdout, stderr) =
        run(&["simulate", "--trace", trace.to_str().unwrap(), "--instances", "4", "--secs", "5"]);
    assert!(ok, "stderr: {stderr}");
    assert!(stdout.contains("results"), "{stdout}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bad_inputs_fail_with_named_errors() {
    for (args, needle) in [
        (vec!["frobnicate"], "unknown command"),
        (vec!["simulate", "--selector", "banana", "--gb", "1"], "unknown selector"),
        (vec!["simulate", "--instances", "lots"], "bad value for --instances"),
        (vec!["simulate", "--selector"], "needs a value"),
        (vec!["gen"], "requires --out"),
        (vec!["simulate", "--workload", "gxy", "--x", "9", "--gb", "1"], "0, 1 or 2"),
        (vec!["simulate", "--trace", "/nonexistent/file"], "No such file"),
    ] {
        let (ok, _, stderr) = run(&args);
        assert!(!ok, "{args:?} should fail");
        assert!(stderr.contains(needle), "{args:?}: {stderr}");
    }
}

#[test]
fn no_arguments_prints_usage_and_fails() {
    let (ok, _, stderr) = run(&[]);
    assert!(!ok);
    assert!(stderr.contains("usage:"), "{stderr}");
}

#[test]
fn unknown_command_usage_lists_every_subcommand() {
    let (ok, _, stderr) = run(&["frobnicate"]);
    assert!(!ok);
    assert!(stderr.contains("usage:"), "{stderr}");
    for cmd in ["simulate", "compare", "topology", "census", "gen", "bench", "chaos", "trace"] {
        assert!(stderr.contains(cmd), "usage must list {cmd}: {stderr}");
    }
}

#[test]
fn bench_journal_round_trips_through_the_trace_verb() {
    let dir = std::env::temp_dir().join(format!("fjcli-journal-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let out = dir.join("BENCH.json");
    let journal = dir.join("journal.jsonl");
    let prom = dir.join("metrics.prom");
    let history = dir.join("history.jsonl");
    let (ok, stdout, stderr) = run(&[
        "bench",
        "--out",
        out.to_str().unwrap(),
        "--trace-out",
        journal.to_str().unwrap(),
        "--prom-out",
        prom.to_str().unwrap(),
        "--history",
        history.to_str().unwrap(),
    ]);
    assert!(ok, "stdout: {stdout}\nstderr: {stderr}");
    assert!(stdout.contains("trace events"), "{stdout}");

    // The history ledger got one appended entry keyed by rev + config.
    let history_text = std::fs::read_to_string(&history).unwrap();
    assert_eq!(history_text.lines().count(), 1, "{history_text}");
    assert!(history_text.contains("\"config\":\"batch64-"), "{history_text}");
    assert!(history_text.contains("\"batched_tuples_per_sec\""), "{history_text}");

    // The Prometheus export validated before writing; spot-check shape.
    let prom_text = std::fs::read_to_string(&prom).unwrap();
    assert!(prom_text.contains("# TYPE fastjoin_"), "{prom_text}");

    // Summary mode: events, actors, and at least one migration round.
    let (ok, summary, stderr) = run(&["trace", "--journal", journal.to_str().unwrap()]);
    assert!(ok, "stderr: {stderr}");
    assert!(summary.contains("0 dropped"), "{summary}");
    assert!(summary.contains("dispatcher"), "{summary}");
    assert!(summary.contains("migration rounds"), "{summary}");

    // Reconstruct the first listed round of group r: the timeline must
    // come back in causal order with monotone route versions (the command
    // exits non-zero otherwise).
    let round_line = summary
        .lines()
        .find(|l| l.trim_start().starts_with("group r round "))
        .expect("bench's skewed run migrates, so a group-r round is listed");
    let round = round_line
        .split_whitespace()
        .nth(3)
        .and_then(|w| w.trim_end_matches(':').parse::<u64>().ok())
        .expect("round number");
    let (ok, timeline, stderr) = run(&[
        "trace",
        "--journal",
        journal.to_str().unwrap(),
        "--round",
        &round.to_string(),
        "--group",
        "r",
    ]);
    assert!(ok, "stderr: {stderr}");
    assert!(timeline.contains("MigTrigger"), "{timeline}");
    assert!(timeline.contains("MigDone"), "{timeline}");
    assert!(timeline.contains("timeline OK"), "{timeline}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn trace_verb_rejects_missing_journal_and_unknown_round() {
    let (ok, _, stderr) = run(&["trace"]);
    assert!(!ok);
    assert!(stderr.contains("requires --journal"), "{stderr}");

    let dir = std::env::temp_dir().join(format!("fjcli-tracebad-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let journal = dir.join("j.jsonl");
    std::fs::write(&journal, "{\"schema\":\"fastjoin-trace-v1\",\"events\":0,\"dropped\":0}\n")
        .unwrap();
    let (ok, _, stderr) =
        run(&["trace", "--journal", journal.to_str().unwrap(), "--round", "424242"]);
    assert!(!ok);
    assert!(stderr.contains("no events for round"), "{stderr}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn malformed_trace_names_the_line() {
    let dir = std::env::temp_dir().join(format!("fjcli-bad-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let bad = dir.join("bad.csv");
    std::fs::write(&bad, "R,1,2,3\nX,broken\n").unwrap();
    let (ok, _, stderr) = run(&["simulate", "--trace", bad.to_str().unwrap()]);
    assert!(!ok);
    assert!(stderr.contains("line 2"), "{stderr}");
    std::fs::remove_dir_all(&dir).ok();
}
