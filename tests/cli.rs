//! End-to-end tests of the `fastjoin-cli` binary (spawned as a process,
//! exactly as a user runs it).

use std::process::Command;

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_fastjoin-cli"))
}

fn run(args: &[&str]) -> (bool, String, String) {
    let out = cli().args(args).output().expect("spawn fastjoin-cli");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn census_reports_the_fig1_skew() {
    let (ok, stdout, _) =
        run(&["census", "--locations", "2000", "--orders", "40000", "--tracks", "160000"]);
    assert!(ok);
    assert!(stdout.contains("orders:"), "{stdout}");
    assert!(stdout.contains("tracks:"), "{stdout}");
    assert!(stdout.contains("80% of tuples in"), "{stdout}");
}

#[test]
fn simulate_runs_and_writes_csv() {
    let dir = std::env::temp_dir().join(format!("fjcli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let csv = dir.join("series.csv");
    let (ok, stdout, stderr) = run(&[
        "simulate",
        "--gb",
        "1",
        "--secs",
        "6",
        "--instances",
        "4",
        "--csv",
        csv.to_str().unwrap(),
    ]);
    assert!(ok, "stderr: {stderr}");
    assert!(stdout.contains("avg throughput"), "{stdout}");
    let text = std::fs::read_to_string(&csv).unwrap();
    assert!(text.starts_with("second,throughput,latency_us,imbalance"));
    assert!(text.lines().count() > 2, "{text}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn gen_then_replay_trace_round_trips() {
    let dir = std::env::temp_dir().join(format!("fjcli-trace-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let trace = dir.join("t.csv");
    let (ok, stdout, _) = run(&[
        "gen",
        "--out",
        trace.to_str().unwrap(),
        "--workload",
        "gxy",
        "--x",
        "0",
        "--y",
        "1",
    ]);
    assert!(ok);
    assert!(stdout.contains("wrote"), "{stdout}");
    let (ok, stdout, stderr) =
        run(&["simulate", "--trace", trace.to_str().unwrap(), "--instances", "4", "--secs", "5"]);
    assert!(ok, "stderr: {stderr}");
    assert!(stdout.contains("results"), "{stdout}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bad_inputs_fail_with_named_errors() {
    for (args, needle) in [
        (vec!["frobnicate"], "unknown command"),
        (vec!["simulate", "--selector", "banana", "--gb", "1"], "unknown selector"),
        (vec!["simulate", "--instances", "lots"], "bad value for --instances"),
        (vec!["simulate", "--selector"], "needs a value"),
        (vec!["gen"], "requires --out"),
        (vec!["simulate", "--workload", "gxy", "--x", "9", "--gb", "1"], "0, 1 or 2"),
        (vec!["simulate", "--trace", "/nonexistent/file"], "No such file"),
    ] {
        let (ok, _, stderr) = run(&args);
        assert!(!ok, "{args:?} should fail");
        assert!(stderr.contains(needle), "{args:?}: {stderr}");
    }
}

#[test]
fn no_arguments_prints_usage_and_fails() {
    let (ok, _, stderr) = run(&[]);
    assert!(!ok);
    assert!(stderr.contains("usage:"), "{stderr}");
}

#[test]
fn malformed_trace_names_the_line() {
    let dir = std::env::temp_dir().join(format!("fjcli-bad-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let bad = dir.join("bad.csv");
    std::fs::write(&bad, "R,1,2,3\nX,broken\n").unwrap();
    let (ok, _, stderr) = run(&["simulate", "--trace", bad.to_str().unwrap()]);
    assert!(!ok);
    assert!(stderr.contains("line 2"), "{stderr}");
    std::fs::remove_dir_all(&dir).ok();
}
