//! Adversarial-scheduling tests of the migration protocol (§III-D).
//!
//! The synchronous cluster delivers messages instantly and the simulator
//! adds uniform latency; this harness goes further: a proptest-chosen
//! scheduler interleaves *every* channel's deliveries arbitrarily (only
//! per-channel FIFO is preserved — the same guarantee a TCP connection or
//! Storm gives), while data keeps flowing and a migration runs. The join
//! must remain exactly-once under every interleaving.

use std::collections::{HashMap, VecDeque};

use proptest::prelude::*;

use fastjoin::core::instance::JoinInstance;
use fastjoin::core::load::InstanceLoad;
use fastjoin::core::protocol::{Effects, InstanceMsg, RouteRequest};
use fastjoin::core::selection::GreedyFit;
use fastjoin::core::tuple::{JoinedPair, Side, Tuple};

/// Channel endpoints of the two-instance mini-cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Node {
    Dispatcher,
    Inst(usize),
}

/// A mini-harness: one dispatcher stub, two R-group instances, FIFO
/// channels, and an externally chosen delivery schedule.
struct Harness {
    instances: Vec<JoinInstance>,
    /// FIFO queues per (from, to) channel.
    channels: HashMap<(Node, Node), VecDeque<InstanceMsg>>,
    /// Routing override for the R group: key → instance.
    route: HashMap<u64, usize>,
    /// Route requests waiting at the dispatcher.
    pending_routes: VecDeque<RouteRequest>,
    results: Vec<JoinedPair>,
    selector: GreedyFit,
    next_seq: u64,
}

impl Harness {
    fn new() -> Self {
        Harness {
            instances: vec![
                JoinInstance::new(0, Side::R, None),
                JoinInstance::new(1, Side::R, None),
            ],
            channels: HashMap::new(),
            route: HashMap::new(),
            pending_routes: VecDeque::new(),
            results: Vec::new(),
            selector: GreedyFit::new(),
            next_seq: 1,
        }
    }

    fn route_of(&self, key: u64) -> usize {
        self.route.get(&key).copied().unwrap_or((key % 2) as usize)
    }

    /// Dispatcher sends a tuple into the group (store if R, probe if S).
    fn ingest(&mut self, side: Side, key: u64, ts: u64) {
        let mut t = Tuple::new(side, key, ts, 0);
        t.seq = self.next_seq;
        self.next_seq += 1;
        let dest = Node::Inst(self.route_of(key));
        self.channels.entry((Node::Dispatcher, dest)).or_default().push_back(InstanceMsg::Data(t));
    }

    /// Non-empty channels, in a deterministic order.
    fn live_channels(&self) -> Vec<(Node, Node)> {
        let mut v: Vec<(Node, Node)> =
            self.channels.iter().filter(|(_, q)| !q.is_empty()).map(|(c, _)| *c).collect();
        v.sort_by_key(|c| format!("{c:?}"));
        v
    }

    /// Delivers the head message of channel `idx` (mod live channels).
    fn deliver_one(&mut self, idx: usize) -> bool {
        let live = self.live_channels();
        if live.is_empty() {
            return false;
        }
        let chan = live[idx % live.len()];
        let msg = self.channels.get_mut(&chan).unwrap().pop_front().unwrap();
        let (_, to) = chan;
        match to {
            Node::Inst(i) => self.handle_at(i, msg),
            Node::Dispatcher => unreachable!("instances message the dispatcher via routes"),
        }
        true
    }

    fn handle_at(&mut self, i: usize, msg: InstanceMsg) {
        let mut fx = Effects::new();
        self.instances[i]
            .handle(msg, &mut self.selector, 0.0, &mut fx)
            .expect("FIFO schedules must never produce a protocol violation");
        // Process everything pending right away (processing order relative
        // to deliveries does not matter for completeness; interleaving is
        // already covered by the delivery schedule).
        while self.instances[i].process_next(&mut fx).is_some() {}
        self.results.append(&mut fx.joined);
        for (to, m) in fx.sends.drain(..) {
            self.channels.entry((Node::Inst(i), Node::Inst(to))).or_default().push_back(m);
        }
        for req in fx.route_requests.drain(..) {
            self.pending_routes.push_back(req);
        }
        // migration_done only matters for the monitor; ignored here.
        fx.migration_done.clear();
    }

    /// Dispatcher applies the oldest pending route update and confirms to
    /// the source over the dispatcher→source channel (after any earlier
    /// data on that channel, preserving FIFO).
    fn apply_route(&mut self) -> bool {
        let Some(req) = self.pending_routes.pop_front() else { return false };
        for k in &req.keys {
            self.route.insert(*k, req.target);
        }
        self.channels
            .entry((Node::Dispatcher, Node::Inst(req.source)))
            .or_default()
            .push_back(InstanceMsg::RouteUpdated { epoch: req.epoch });
        true
    }

    fn drain_everything(&mut self) {
        loop {
            while self.deliver_one(0) {}
            if !self.apply_route() {
                break;
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Exactly-once across a migration no matter how deliveries interleave.
    #[test]
    fn migration_is_exactly_once_under_any_schedule(
        // (side, key, position) stream; the migration fires mid-stream.
        stream in prop::collection::vec((prop::bool::ANY, 0u64..6), 10..120),
        schedule in prop::collection::vec(0usize..7, 0..400),
        migrate_at in 0usize..100,
        target in 0usize..2,
    ) {
        let mut h = Harness::new();
        let mut delivered = 0usize;
        let mut injected_migration = false;
        let mut expected_r: HashMap<u64, u64> = HashMap::new();
        let mut expected_s: HashMap<u64, u64> = HashMap::new();

        for (pos, (is_r, key)) in stream.iter().enumerate() {
            let side = if *is_r { Side::R } else { Side::S };
            match side {
                Side::R => *expected_r.entry(*key).or_insert(0) += 1,
                Side::S => *expected_s.entry(*key).or_insert(0) += 1,
            }
            h.ingest(side, *key, pos as u64);

            // Interleave deliveries and routing per the schedule.
            if delivered < schedule.len() {
                let step = schedule[delivered];
                delivered += 1;
                if step == 6 {
                    h.apply_route();
                } else {
                    let _ = h.deliver_one(step);
                }
            }

            // Fire one migration mid-stream: instance (1-target) sends its
            // keys toward `target`.
            if pos == migrate_at && !injected_migration {
                injected_migration = true;
                let source = 1 - target;
                // Deliver everything already queued to the source first so
                // it has state worth migrating; the schedule has already
                // created plenty of in-flight chaos elsewhere.
                let load = h.instances[target].load();
                let _ = h.instances[source].take_load_report();
                let msg = InstanceMsg::MigrateCmd {
                    epoch: 1,
                    target,
                    target_load: InstanceLoad::new(load.stored, load.queue),
                };
                h.channels
                    .entry((Node::Dispatcher, Node::Inst(source)))
                    .or_default()
                    .push_back(msg);
            }
        }
        h.drain_everything();

        // Both instances idle, all channels empty.
        prop_assert!(h.instances.iter().all(|i| i.migration_state().is_idle()));
        prop_assert!(h.live_channels().is_empty());

        // Exactly-once: the R group joins every (r, s) pair with
        // seq_r < seq_s exactly once (the other direction belongs to the
        // S group, which this harness does not model).
        let mut seen = std::collections::HashSet::new();
        for pair in &h.results {
            prop_assert!(pair.left.seq < pair.right.seq, "R-group joins store-then-probe");
            prop_assert!(seen.insert(pair.identity()), "duplicate {:?}", pair.identity());
        }
        // Count expectation: for each key, every S tuple joins all R
        // tuples with smaller seq. Recompute from the stream directly.
        let mut expected_pairs = 0u64;
        let mut r_seen: HashMap<u64, u64> = HashMap::new();
        for (is_r, key) in stream.iter() {
            if *is_r {
                *r_seen.entry(*key).or_insert(0) += 1;
            } else {
                expected_pairs += r_seen.get(key).copied().unwrap_or(0);
            }
        }
        prop_assert_eq!(h.results.len() as u64, expected_pairs);
    }
}
