//! The grid-city workload (physical taxi model) through the full stack:
//! all three engines must agree, and FastJoin must act on its skew.

use fastjoin::baselines::{build_cluster, SystemKind};
use fastjoin::core::config::FastJoinConfig;
use fastjoin::core::tuple::{Side, Tuple};
use fastjoin::datagen::{GridCityConfig, GridCityGen};
use fastjoin::sim::{CostModel, SimConfig, Simulation};

fn workload() -> Vec<Tuple> {
    GridCityGen::new(&GridCityConfig {
        width: 30,
        height: 30,
        taxis: 150,
        orders: 4_000,
        tracks: 24_000,
        order_rate: 40_000.0,
        track_rate: 240_000.0,
        ..GridCityConfig::default()
    })
    .collect()
}

fn cfg() -> FastJoinConfig {
    FastJoinConfig {
        instances_per_group: 6,
        theta: 1.4,
        monitor_period: 10_000,
        migration_cooldown: 20_000,
        ..FastJoinConfig::default()
    }
}

fn expected_pairs(tuples: &[Tuple]) -> u64 {
    let mut r = std::collections::HashMap::new();
    let mut s = std::collections::HashMap::new();
    for t in tuples {
        match t.side {
            Side::R => *r.entry(t.key).or_insert(0u64) += 1,
            Side::S => *s.entry(t.key).or_insert(0u64) += 1,
        }
    }
    r.iter().map(|(k, n)| n * s.get(k).copied().unwrap_or(0)).sum()
}

#[test]
fn gridcity_joins_identically_across_engines() {
    let tuples = workload();
    let expected = expected_pairs(&tuples);
    assert!(expected > 10_000, "city workload must join richly, got {expected}");

    let sync =
        build_cluster(SystemKind::FastJoin, cfg()).run_to_completion(tuples.clone()).len() as u64;
    assert_eq!(sync, expected, "synchronous cluster");

    let sim = Simulation::new(
        SimConfig {
            fastjoin: cfg(),
            cost: CostModel { per_comparison: 0.01, per_match: 0.01, ..CostModel::default() },
            max_time: 120_000_000,
            ..SimConfig::default()
        },
        tuples.clone().into_iter(),
    )
    .run();
    assert_eq!(sim.results_total, expected, "simulator");

    let rt = fastjoin::runtime::run_topology(
        &fastjoin::runtime::RuntimeConfig {
            fastjoin: cfg(),
            queue_cap: 512,
            monitor_period_ms: 10,
            ..fastjoin::runtime::RuntimeConfig::default()
        },
        tuples,
    );
    assert_eq!(rt.results_total, expected, "threaded runtime");
}

#[test]
fn gridcity_skew_triggers_migration_in_the_sim() {
    let report = Simulation::new(
        SimConfig {
            fastjoin: cfg(),
            cost: CostModel { per_comparison: 0.05, per_match: 0.05, ..CostModel::default() },
            max_time: 120_000_000,
            ..SimConfig::default()
        },
        workload().into_iter(),
    )
    .run();
    assert!(
        report.migrations() > 0,
        "hotspot-driven skew should trigger migration; stats: {:?}",
        report.monitor_stats
    );
}
