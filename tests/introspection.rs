//! Tier-1 e2e of the live introspection plane: the periodic
//! `RuntimeSnapshot` stream (consistency across snapshots), the
//! `/metrics` + `/snapshot` HTTP endpoint under load, and the migration
//! decision audit in the run report.

use fastjoin::baselines::SystemKind;
use fastjoin::core::config::FastJoinConfig;
use fastjoin::core::json::Json;
use fastjoin::core::monitor::{DecisionOutcome, DecisionReason};
use fastjoin::core::telemetry::validate_prometheus;
use fastjoin::core::tuple::Tuple;
use fastjoin::runtime::{run_topology, RuntimeConfig};

/// One hot key carries 3/4 of the traffic — enough skew that the monitor
/// keeps evaluating (and auditing) round after round.
fn skewed_workload(n: u64) -> Vec<Tuple> {
    (0..n)
        .map(|i| {
            let key = if i % 4 != 0 { 999 } else { i % 97 };
            if i % 5 == 0 {
                Tuple::r(key, 0, i)
            } else {
                Tuple::s(key, 0, i)
            }
        })
        .collect()
}

fn base_cfg() -> RuntimeConfig {
    RuntimeConfig {
        system: SystemKind::FastJoin,
        fastjoin: FastJoinConfig {
            instances_per_group: 4,
            theta: 1.2,
            migration_cooldown: 50_000,
            ..FastJoinConfig::default()
        },
        monitor_period_ms: 10,
        rate_limit: Some(60_000.0),
        ..RuntimeConfig::default()
    }
}

fn u(j: &Json, key: &str) -> u64 {
    j.get(key).and_then(Json::as_u64).unwrap_or(u64::MAX)
}

#[test]
fn snapshot_stream_is_consistent_across_a_skewed_run() {
    let path =
        std::env::temp_dir().join(format!("fastjoin-test-snapshots-{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let mut cfg = base_cfg();
    cfg.snapshot_interval_ms = 25;
    cfg.snapshot_path = Some(path.to_string_lossy().to_string());
    let report = run_topology(&cfg, skewed_workload(12_000));
    assert!(report.results_total > 0, "run must produce results");

    let stream = std::fs::read_to_string(&path).expect("snapshot stream written");
    let _ = std::fs::remove_file(&path);
    let snaps: Vec<Json> = stream
        .lines()
        .map(|l| Json::parse(l).expect("every stream line is one JSON snapshot"))
        .collect();
    assert!(snaps.len() >= 2, "a ~200 ms run at 25 ms interval yields several snapshots");

    let mut prev_seq = 0;
    let mut prev_at = 0;
    let mut prev_counters: Vec<(String, u64)> = Vec::new();
    for snap in &snaps {
        let seq = u(snap, "seq");
        assert!(seq > prev_seq, "seq strictly increasing, got {seq} after {prev_seq}");
        let at = u(snap, "at_us");
        assert!(at >= prev_at, "snapshot timestamps monotone");
        prev_seq = seq;
        prev_at = at;

        // Counters are monotone across snapshots, and each delta accounts
        // exactly for the growth since the previous snapshot.
        let counters = snap.get("counters").and_then(Json::as_arr).expect("counters array");
        for c in counters {
            let name = c.get("name").and_then(Json::as_str).expect("counter name").to_string();
            let total = u(c, "total");
            let delta = u(c, "delta");
            let before =
                prev_counters.iter().find(|(n, _)| *n == name).map(|(_, t)| *t).unwrap_or(0);
            assert!(total >= before, "counter {name} went backwards: {before} -> {total}");
            assert_eq!(delta, total - before, "counter {name} delta mismatch");
            match prev_counters.iter_mut().find(|(n, _)| *n == name) {
                Some((_, t)) => *t = total,
                None => prev_counters.push((name, total)),
            }
        }

        // The skew heatmap rows: every instance reports a load and its
        // hottest keys; groups report a valid migration phase.
        let instances = snap.get("instances").and_then(Json::as_arr).expect("instances");
        assert_eq!(instances.len(), 8, "4 R + 4 S instances probed");
        for p in instances {
            assert!(u(p, "load") != u64::MAX, "instance load present");
            assert!(u(p, "queue_depth") != u64::MAX, "queue depth present");
            assert!(p.get("hot_keys").and_then(Json::as_arr).is_some(), "hot keys present");
        }
        let groups = snap.get("groups").and_then(Json::as_arr).expect("groups");
        assert_eq!(groups.len(), 2);
        for g in groups {
            let phase = g.get("phase").and_then(Json::as_str).expect("phase");
            assert!(
                ["idle", "migrating", "aborting"].contains(&phase),
                "snapshot during a run reports a valid phase, got {phase:?}"
            );
            assert!(g.get("imbalance").and_then(Json::as_num).is_some(), "LI present");
        }
    }
}

#[test]
fn metrics_endpoint_serves_valid_prometheus_under_load() {
    use std::io::{Read as _, Write as _};

    const PORT: u16 = 38917;
    let runner = std::thread::spawn(move || {
        let mut cfg = base_cfg();
        cfg.rate_limit = Some(15_000.0); // ~2 s run: plenty of mid-run polls
        cfg.serve_metrics = Some(PORT);
        run_topology(&cfg, skewed_workload(30_000))
    });

    let get = |path: &str| -> Option<String> {
        let mut stream = std::net::TcpStream::connect(("127.0.0.1", PORT)).ok()?;
        stream.set_read_timeout(Some(std::time::Duration::from_secs(2))).ok()?;
        stream
            .write_all(format!("GET {path} HTTP/1.1\r\nConnection: close\r\n\r\n").as_bytes())
            .ok()?;
        let mut response = String::new();
        stream.read_to_string(&mut response).ok()?;
        let (head, body) = response.split_once("\r\n\r\n")?;
        assert!(head.starts_with("HTTP/1.1 200"), "unexpected status: {head}");
        Some(body.to_string())
    };

    // Poll mid-run until the server answers (it binds before the spout
    // starts, but this test must not race the bind).
    let mut polled = 0;
    let mut saw_probes = false;
    for _ in 0..100 {
        if runner.is_finished() {
            break;
        }
        if let Some(text) = get("/metrics") {
            validate_prometheus(&text).expect("mid-run /metrics is valid Prometheus text");
            let snap = get("/snapshot").expect("server answers /snapshot too");
            let snap = Json::parse(&snap).expect("mid-run /snapshot is valid JSON");
            assert!(u(&snap, "seq") >= 1, "on-demand snapshots allocate sequence numbers");
            // The very first poll can land before the first report tick
            // fills the hub, so probe presence is asserted cumulatively.
            saw_probes |=
                snap.get("instances").and_then(Json::as_arr).is_some_and(|a| !a.is_empty());
            polled += 1;
        }
        std::thread::sleep(std::time::Duration::from_millis(50));
    }
    let report = runner.join().expect("topology run panicked");
    assert!(report.results_total > 0);
    assert!(polled > 0, "at least one successful mid-run /metrics + /snapshot poll");
    assert!(saw_probes, "some mid-run snapshot carries instance probes");
}

#[test]
fn decision_audit_explains_every_committed_round() {
    let report = run_topology(&base_cfg(), skewed_workload(30_000));
    let all: Vec<_> = report.decisions.iter().flatten().collect();
    assert!(!all.is_empty(), "a skewed run must audit at least one decision");
    let triggered = all.iter().filter(|d| d.reason == DecisionReason::Triggered).count() as u64;
    let stats_triggered: u64 = report.monitor_stats.iter().flatten().map(|s| s.triggered).sum();
    assert_eq!(
        triggered, stats_triggered,
        "every committed round has exactly one triggered decision"
    );
    for d in &all {
        match d.outcome {
            DecisionOutcome::Rejected => {
                assert!(d.epoch.is_none(), "rejections allocate no epoch");
                assert_ne!(d.reason, DecisionReason::Triggered, "rejections carry a reason");
            }
            DecisionOutcome::Pending
            | DecisionOutcome::Effective
            | DecisionOutcome::Abandoned
            | DecisionOutcome::Aborted => {
                assert!(d.epoch.is_some(), "committed rounds carry their epoch");
                assert_eq!(d.reason, DecisionReason::Triggered);
            }
        }
        assert!(d.imbalance > 1.0, "decisions are only recorded when LI is meaningful");
    }
    // The report JSON exposes the audit under groups[].decisions.
    let rendered = report.to_json().to_string_compact();
    assert!(rendered.contains("\"decisions\""));
    assert!(rendered.contains("\"reason\""));
}

#[test]
fn cooldown_rejections_carry_the_cooldown_reason() {
    let mut cfg = base_cfg();
    // An hour-long cooldown: no round can ever trigger, so every LI > Θ
    // evaluation must be audited as a cooldown rejection.
    cfg.fastjoin.migration_cooldown = 3_600_000_000;
    let report = run_topology(&cfg, skewed_workload(12_000));
    assert_eq!(report.migrations(), 0, "cooldown pins the monitor");
    let all: Vec<_> = report.decisions.iter().flatten().collect();
    assert!(!all.is_empty(), "rejected evaluations still audited");
    for d in &all {
        assert_eq!(d.reason, DecisionReason::Cooldown, "only cooldown rejections possible");
        assert_eq!(d.outcome, DecisionOutcome::Rejected);
        assert!(d.epoch.is_none());
    }
}
