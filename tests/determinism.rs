//! Determinism and engine-agreement tests: the simulator is bit-stable for
//! a fixed seed, generators replay identically, and engines agree on
//! result counts.

use fastjoin::baselines::SystemKind;
use fastjoin::core::config::{FastJoinConfig, SelectorKind};
use fastjoin::core::tuple::Tuple;
use fastjoin::datagen::ridehail::{RideHailConfig, RideHailGen};
use fastjoin::datagen::synthetic::{SyntheticConfig, SyntheticGen};
use fastjoin::sim::{CostModel, SimConfig, Simulation};

fn sim_cfg(system: SystemKind, selector: SelectorKind) -> SimConfig {
    SimConfig {
        system,
        fastjoin: FastJoinConfig {
            instances_per_group: 6,
            theta: 1.5,
            monitor_period: 200_000,
            migration_cooldown: 300_000,
            selector,
            ..FastJoinConfig::default()
        },
        cost: CostModel { per_comparison: 0.05, per_match: 0.05, ..CostModel::default() },
        max_time: 60_000_000,
        ..SimConfig::default()
    }
}

fn workload() -> Vec<Tuple> {
    RideHailGen::new(&RideHailConfig {
        locations: 500,
        orders: 5_000,
        tracks: 20_000,
        order_rate: 20_000.0,
        track_rate: 80_000.0,
        ..RideHailConfig::default()
    })
    .collect()
}

#[test]
fn simulator_runs_are_bit_stable() {
    let run = |selector| {
        let report =
            Simulation::new(sim_cfg(SystemKind::FastJoin, selector), workload().into_iter()).run();
        (
            report.results_total,
            report.duration,
            report.migrations(),
            report.metrics.throughput.sums().to_vec(),
            report.metrics.imbalance.means(),
        )
    };
    assert_eq!(run(SelectorKind::GreedyFit), run(SelectorKind::GreedyFit));
    // SAFit is randomized but seeded — still deterministic.
    assert_eq!(run(SelectorKind::SaFit), run(SelectorKind::SaFit));
}

#[test]
fn greedy_and_safit_agree_on_result_counts() {
    let greedy = Simulation::new(
        sim_cfg(SystemKind::FastJoin, SelectorKind::GreedyFit),
        workload().into_iter(),
    )
    .run();
    let sa =
        Simulation::new(sim_cfg(SystemKind::FastJoin, SelectorKind::SaFit), workload().into_iter())
            .run();
    // Different migration plans, identical join semantics.
    assert_eq!(greedy.results_total, sa.results_total);
}

#[test]
fn generators_replay_identically() {
    let a: Vec<Tuple> = SyntheticGen::new(&SyntheticConfig {
        keys: 1_000,
        tuples_per_stream: 2_000,
        ..SyntheticConfig::group(1, 2)
    })
    .collect();
    let b: Vec<Tuple> = SyntheticGen::new(&SyntheticConfig {
        keys: 1_000,
        tuples_per_stream: 2_000,
        ..SyntheticConfig::group(1, 2)
    })
    .collect();
    assert_eq!(a, b);

    let r1: Vec<Tuple> = RideHailGen::new(&RideHailConfig::default()).take(10_000).collect();
    let r2: Vec<Tuple> = RideHailGen::new(&RideHailConfig::default()).take(10_000).collect();
    assert_eq!(r1, r2);
}

#[test]
fn all_engines_agree_on_result_totals() {
    // Same workload through the synchronous cluster, the simulator, and
    // the threaded runtime — three engines, one answer.
    let tuples = workload();

    let mut cluster = fastjoin::baselines::build_cluster(
        SystemKind::FastJoin,
        sim_cfg(SystemKind::FastJoin, SelectorKind::GreedyFit).fastjoin,
    );
    let sync_results = cluster.run_to_completion(tuples.clone()).len() as u64;

    let sim_report = Simulation::new(
        sim_cfg(SystemKind::FastJoin, SelectorKind::GreedyFit),
        tuples.clone().into_iter(),
    )
    .run();

    let rt_report = fastjoin::runtime::run_topology(
        &fastjoin::runtime::RuntimeConfig {
            system: SystemKind::FastJoin,
            fastjoin: sim_cfg(SystemKind::FastJoin, SelectorKind::GreedyFit).fastjoin,
            queue_cap: 1024,
            monitor_period_ms: 20,
            rate_limit: None,
            ..fastjoin::runtime::RuntimeConfig::default()
        },
        tuples,
    );

    assert_eq!(sync_results, sim_report.results_total, "cluster vs simulator");
    assert_eq!(sync_results, rt_report.results_total, "cluster vs runtime");
}
