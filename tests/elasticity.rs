//! Elastic scale-out (§IV-C): new join instances start empty and fill up
//! through the ordinary migration mechanism — almost all of their memory
//! goes to tuples (SGR ≈ 1), and no existing key placement changes.

use fastjoin::core::biclique::JoinCluster;
use fastjoin::core::config::FastJoinConfig;
use fastjoin::core::tuple::{JoinedPair, Side, Tuple};

fn cfg(n: usize) -> FastJoinConfig {
    FastJoinConfig {
        instances_per_group: n,
        theta: 1.2,
        monitor_period: 100,
        migration_cooldown: 0,
        ..FastJoinConfig::default()
    }
}

#[test]
fn scale_out_attracts_load_via_migration() {
    let mut cluster = JoinCluster::fastjoin(cfg(2));
    // Warm up both instances with a skewed multi-key workload.
    let mut ts = 0;
    for round in 0..300u64 {
        for key in 0..12u64 {
            ts += 1;
            cluster.ingest(Tuple::r(key, ts, 0));
            if round % 2 == 0 {
                cluster.ingest(Tuple::s(key, ts, 0));
            }
        }
    }
    cluster.pump();
    cluster.tick();
    cluster.pump();

    cluster.scale_out();
    assert_eq!(cluster.config().instances_per_group, 3);
    assert_eq!(cluster.instance(Side::R, 2).store().len(), 0, "newcomer starts empty");

    // Keep streaming; ticks should now migrate keys onto the newcomer.
    for round in 0..600u64 {
        for key in 0..12u64 {
            ts += 1;
            cluster.ingest(Tuple::r(key, ts, 0));
            cluster.ingest(Tuple::s(key, ts, 0));
        }
        if round % 20 == 0 {
            cluster.pump();
            cluster.tick();
        }
    }
    cluster.pump();
    cluster.tick();
    cluster.pump();

    let newcomer_stored = cluster.instance(Side::R, 2).store().len();
    assert!(newcomer_stored > 0, "migration must have moved keys to the new instance");
    let migs = cluster.monitor(Side::R).unwrap().stats().effective;
    assert!(migs > 0, "effective migrations expected");
}

#[test]
fn scale_out_preserves_exactly_once() {
    let mut cluster = JoinCluster::fastjoin(cfg(2));
    let mut r_count = std::collections::HashMap::new();
    let mut s_count = std::collections::HashMap::new();
    let mut results: Vec<JoinedPair> = Vec::new();
    let mut ts = 0u64;
    for phase in 0..3 {
        for i in 0..800u64 {
            ts += 1;
            let key = i % 9;
            if i % 2 == 0 {
                cluster.ingest(Tuple::r(key, ts, 0));
                *r_count.entry(key).or_insert(0u64) += 1;
            } else {
                cluster.ingest(Tuple::s(key, ts, 0));
                *s_count.entry(key).or_insert(0u64) += 1;
            }
            if i % 50 == 0 {
                cluster.pump();
                cluster.tick();
                results.append(&mut cluster.drain_results());
            }
        }
        if phase < 2 {
            cluster.scale_out(); // grow mid-stream, twice
        }
    }
    cluster.pump();
    cluster.tick();
    cluster.pump();
    results.append(&mut cluster.drain_results());

    let expected: u64 = r_count.iter().map(|(k, r)| r * s_count.get(k).copied().unwrap_or(0)).sum();
    assert_eq!(results.len() as u64, expected);
    let mut ids: Vec<_> = results.iter().map(JoinedPair::identity).collect();
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(ids.len() as u64, expected, "no duplicates across scale-outs");
    assert_eq!(cluster.config().instances_per_group, 4);
}

#[test]
#[should_panic(expected = "dynamic balancing")]
fn static_cluster_cannot_scale_out() {
    let mut cluster = JoinCluster::bistream(cfg(2));
    cluster.scale_out();
}
