//! Cross-crate tests of window-based join semantics (§III-E).

use fastjoin::baselines::{build_cluster, SystemKind};
use fastjoin::core::config::{FastJoinConfig, WindowConfig};
use fastjoin::core::tuple::{Side, Tuple};

fn windowed_cfg(span_units: u64) -> FastJoinConfig {
    FastJoinConfig {
        instances_per_group: 4,
        theta: 1.5,
        monitor_period: 100,
        migration_cooldown: 0,
        window: Some(WindowConfig { sub_windows: 4, sub_window_len: span_units / 4 }),
        ..FastJoinConfig::default()
    }
}

/// Reference implementation of the windowed join over raw tuples: pair
/// (r, s) joins iff keys match and the earlier-ingested tuple is within
/// `span` of the later one.
fn reference_count(tuples: &[Tuple], span: u64) -> u64 {
    let mut count = 0;
    for (i, a) in tuples.iter().enumerate() {
        for b in &tuples[i + 1..] {
            if a.key == b.key && a.side != b.side && b.ts.saturating_sub(a.ts) <= span {
                count += 1;
            }
        }
    }
    count
}

#[test]
fn windowed_join_matches_reference_model() {
    let span = 100u64;
    // Tuples spaced 30 time units apart over a few keys: some pairs fall
    // inside the window, some out.
    let tuples: Vec<Tuple> = (0..120u64)
        .map(|i| {
            // Decorrelate key and side so both sides share every key.
            let key = (i / 2) % 4;
            let ts = i * 30;
            if i % 2 == 0 {
                Tuple::r(key, ts, i)
            } else {
                Tuple::s(key, ts, i)
            }
        })
        .collect();
    let expected = reference_count(&tuples, span);
    assert!(expected > 0, "test workload must produce in-window joins");
    let mut cluster = build_cluster(SystemKind::FastJoin, windowed_cfg(span));
    let results = cluster.run_to_completion(tuples.clone());
    assert_eq!(results.len() as u64, expected);
    for pair in &results {
        let (early, late) = if pair.left.seq < pair.right.seq {
            (pair.left, pair.right)
        } else {
            (pair.right, pair.left)
        };
        assert!(late.ts.saturating_sub(early.ts) <= span, "out-of-window pair emitted");
    }
}

#[test]
fn windowed_join_is_identical_across_systems() {
    let span = 200u64;
    let tuples: Vec<Tuple> = (0..300u64)
        .map(|i| {
            let key = (i * 7) % 11;
            let ts = i * 17;
            if (i / 2) % 2 == 0 {
                Tuple::r(key, ts, i)
            } else {
                Tuple::s(key, ts, i)
            }
        })
        .collect();
    let expected = reference_count(&tuples, span);
    for kind in [SystemKind::FastJoin, SystemKind::BiStream, SystemKind::BiStreamContRand] {
        let mut cluster = build_cluster(kind, windowed_cfg(span));
        let results = cluster.run_to_completion(tuples.clone());
        assert_eq!(results.len() as u64, expected, "{}", kind.label());
    }
}

#[test]
fn stores_are_garbage_collected_as_the_window_slides() {
    let mut cluster = build_cluster(SystemKind::BiStream, windowed_cfg(100));
    // A burst of old tuples, then advance time far past the window.
    for i in 0..200u64 {
        cluster.ingest(Tuple::r(i % 5, i, 0));
    }
    cluster.pump();
    // Before any tick, nothing has been garbage-collected.
    let stored_before: u64 = (0..4).map(|i| cluster.instance(Side::R, i).store().len()).sum();
    assert_eq!(stored_before, 200);
    // One tuple far in the future slides the window for its instance; the
    // tick GC uses each instance's own watermark, so spread tuples over
    // all keys to advance them all.
    for k in 0..5u64 {
        cluster.ingest(Tuple::r(k, 10_000 + k, 0));
    }
    cluster.pump();
    cluster.tick();
    let stored_after: u64 = (0..4).map(|i| cluster.instance(Side::R, i).store().len()).sum();
    assert!(stored_after <= 5, "expired tuples must be collected, still stored: {stored_after}");
}

#[test]
fn full_history_join_never_expires() {
    let cfg = FastJoinConfig { instances_per_group: 2, window: None, ..FastJoinConfig::default() };
    let mut cluster = build_cluster(SystemKind::BiStream, cfg);
    cluster.ingest(Tuple::r(1, 0, 0));
    cluster.pump();
    cluster.ingest(Tuple::s(1, u64::from(u32::MAX), 0)); // eons later
    cluster.pump();
    assert_eq!(cluster.drain_results().len(), 1);
}
