//! The migration-mode ablation (§III-D): the paper's safe protocol vs the
//! rejected "notify the dispatcher first" variant.
//!
//! With the naive variant the target instance processes newly routed
//! joining-stream tuples immediately, racing the migrated store's arrival.
//! Under delivery latency (the simulator) that loses joins; the safe
//! protocol never does.

use fastjoin::baselines::SystemKind;
use fastjoin::core::config::{FastJoinConfig, MigrationMode};
use fastjoin::core::tuple::Tuple;
use fastjoin::sim::{CostModel, SimConfig, Simulation};

fn run(mode: MigrationMode, seed: u64) -> (u64, u64) {
    // Heavy skew → many migrations; network latency creates the race
    // window the naive variant falls into.
    let mut tuples = Vec::new();
    let mut ts = 0u64;
    for i in 0..30_000u64 {
        ts += 20;
        let key = if i % 3 == 0 { 7 } else { (i * 31 + seed) % 41 };
        if i % 2 == 0 {
            tuples.push(Tuple::r(key, ts, i));
        } else {
            tuples.push(Tuple::s(key, ts, i));
        }
    }
    let mut expected = 0u64;
    let mut r_seen = std::collections::HashMap::new();
    let mut s_seen = std::collections::HashMap::new();
    for t in &tuples {
        match t.side {
            fastjoin::core::tuple::Side::R => *r_seen.entry(t.key).or_insert(0u64) += 1,
            fastjoin::core::tuple::Side::S => *s_seen.entry(t.key).or_insert(0u64) += 1,
        }
    }
    for (k, r) in &r_seen {
        expected += r * s_seen.get(k).copied().unwrap_or(0);
    }

    let cfg = SimConfig {
        system: SystemKind::FastJoin,
        fastjoin: FastJoinConfig {
            instances_per_group: 4,
            theta: 1.2,
            monitor_period: 20_000,
            migration_cooldown: 40_000,
            migration_mode: mode,
            ..FastJoinConfig::default()
        },
        cost: CostModel {
            per_comparison: 0.005,
            per_match: 0.005,
            network_latency: 500.0,
            ..CostModel::default()
        },
        max_time: 300_000_000,
        ..SimConfig::default()
    };
    let report = Simulation::new(cfg, tuples.into_iter()).run();
    assert!(report.migrations() > 0, "the ablation needs migrations to race");
    (report.results_total, expected)
}

#[test]
fn safe_protocol_is_complete() {
    let (got, expected) = run(MigrationMode::Safe, 1);
    assert_eq!(got, expected);
}

#[test]
fn naive_notify_first_loses_joins() {
    let mut lost_anywhere = false;
    for seed in 1..=3 {
        let (got, expected) = run(MigrationMode::NaiveNotifyFirst, seed);
        assert!(got <= expected, "naive mode must never duplicate");
        if got < expected {
            lost_anywhere = true;
        }
    }
    assert!(
        lost_anywhere,
        "the race the paper warns about should lose at least one join across seeds"
    );
}
