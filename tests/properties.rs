//! Property-based tests (proptest) over the core invariants.

use proptest::prelude::*;

use fastjoin::baselines::{build_cluster, SystemKind};
use fastjoin::core::config::{FastJoinConfig, SaFitParams};
use fastjoin::core::load::{InstanceLoad, KeyStat};
use fastjoin::core::selection::{plan_is_feasible, ExhaustiveFit, GreedyFit, KeySelector, SaFit};
use fastjoin::core::state::TupleStore;
use fastjoin::core::tuple::{JoinedPair, Side, Tuple};
use fastjoin::core::window::SubWindowRing;
use fastjoin::core::WindowConfig;
use fastjoin::datagen::Zipf;

fn key_stats_strategy(max_keys: usize) -> impl Strategy<Value = Vec<KeyStat>> {
    prop::collection::vec((0u64..1000, 0u64..50, 0u64..50), 0..max_keys).prop_map(|v| {
        let mut seen = std::collections::HashSet::new();
        v.into_iter()
            .filter(|(k, _, _)| seen.insert(*k))
            .map(|(k, stored, queue)| KeyStat::new(k, stored, queue))
            .collect()
    })
}

proptest! {
    /// GreedyFit never produces an infeasible plan: the post-migration
    /// source must stay at least as loaded as the target (Eq. 9).
    #[test]
    fn greedyfit_plans_are_always_feasible(
        keys in key_stats_strategy(60),
        src_extra in 0u64..10_000,
        dst_stored in 0u64..5_000,
        dst_queue in 0u64..5_000,
        theta_gap in 0.0f64..500.0,
    ) {
        let stored: u64 = keys.iter().map(|k| k.stored).sum::<u64>() + src_extra;
        let queue: u64 = keys.iter().map(|k| k.queue).sum();
        let src = InstanceLoad::new(stored, queue);
        let dst = InstanceLoad::new(dst_stored, dst_queue);
        let plan = GreedyFit::new().select(src, dst, &keys, theta_gap);
        prop_assert!(plan_is_feasible(&plan));
        // Every selected key clears the benefit floor.
        for k in &plan.keys {
            let stat = keys.iter().find(|s| s.key == *k).unwrap();
            prop_assert!(stat.benefit(src, dst) >= theta_gap);
        }
        // The selected set is a subset of the input without duplicates.
        let mut sorted = plan.keys.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), plan.keys.len());
    }

    /// SAFit plans are feasible for arbitrary inputs and seeds.
    #[test]
    fn safit_plans_are_always_feasible(
        keys in key_stats_strategy(40),
        seed in 0u64..1_000,
        dst_stored in 0u64..2_000,
        dst_queue in 0u64..2_000,
    ) {
        let stored: u64 = keys.iter().map(|k| k.stored).sum();
        let queue: u64 = keys.iter().map(|k| k.queue).sum();
        let src = InstanceLoad::new(stored, queue);
        let dst = InstanceLoad::new(dst_stored, dst_queue);
        let mut sa = SaFit::new(SaFitParams { iters_per_temp: 16, ..Default::default() }, seed);
        let plan = sa.select(src, dst, &keys, 0.0);
        prop_assert!(plan_is_feasible(&plan));
        if !plan.is_empty() {
            prop_assert!(plan.total_benefit < src.load() - dst.load());
        }
    }

    /// On small universes the exhaustive oracle dominates GreedyFit's
    /// packed benefit, and both stay under the gap.
    #[test]
    fn exact_oracle_dominates_greedy(
        keys in key_stats_strategy(12),
        dst_stored in 0u64..500,
        dst_queue in 0u64..500,
    ) {
        let stored: u64 = keys.iter().map(|k| k.stored).sum::<u64>() + 1_000;
        let queue: u64 = keys.iter().map(|k| k.queue).sum::<u64>() + 100;
        let src = InstanceLoad::new(stored, queue);
        let dst = InstanceLoad::new(dst_stored, dst_queue);
        let greedy = GreedyFit::new().select(src, dst, &keys, 0.0);
        let exact = ExhaustiveFit::new().select(src, dst, &keys, 0.0);
        prop_assert!(greedy.total_benefit <= exact.total_benefit + 1e-6,
            "greedy {} beat exact {}", greedy.total_benefit, exact.total_benefit);
        let gap = src.load() - dst.load();
        if gap > 0.0 {
            prop_assert!(exact.total_benefit < gap);
        }
    }

    /// TupleStore: probing after interleaved inserts/extractions returns
    /// exactly the still-stored tuples with smaller seq, in-window.
    #[test]
    fn tuple_store_probe_matches_reference_model(
        ops in prop::collection::vec((0u64..10, 0u64..1000u64), 1..200),
        min_ts in 0u64..500,
    ) {
        let mut store = TupleStore::new();
        let mut model: Vec<Tuple> = Vec::new();
        for (i, (key, ts)) in ops.iter().enumerate() {
            let mut t = Tuple::r(*key, *ts, 0);
            t.seq = i as u64 + 1;
            store.insert(t);
            model.push(t);
        }
        let mut probe = Tuple::s(ops[0].0, 1_000, 0);
        probe.seq = (ops.len() as u64) / 2;
        let got: Vec<u64> = store.probe(&probe, min_ts).map(|t| t.seq).collect();
        let mut expected: Vec<u64> = model
            .iter()
            .filter(|t| t.key == probe.key && t.seq < probe.seq && t.ts >= min_ts)
            .map(|t| t.seq)
            .collect();
        expected.sort_unstable();
        let mut got_sorted = got;
        got_sorted.sort_unstable();
        prop_assert_eq!(got_sorted, expected);
    }

    /// SubWindowRing conserves counts: recorded = retained + expired.
    #[test]
    fn sub_window_ring_conserves_counts(
        records in prop::collection::vec((0u64..100_000, 1u64..10), 1..200),
        sub_windows in 1usize..12,
        sub_window_len in 1u64..5_000,
    ) {
        let mut ring = SubWindowRing::new(WindowConfig { sub_windows, sub_window_len });
        let mut recorded = 0u64;
        let mut expired = 0u64;
        for (ts, n) in records {
            let before = ring.total();
            let e = ring.record(ts, n);
            expired += e;
            // Either the record landed in a live sub-window or it was
            // already expired and silently dropped.
            if ring.total() == before - e + n {
                recorded += n;
            } else {
                prop_assert_eq!(ring.total(), before - e, "record neither landed nor dropped");
            }
        }
        prop_assert_eq!(ring.total() + expired, recorded);
    }

    /// The Zipf sampler always returns ranks in range, and rank 1 is ever
    /// the most likely outcome for positive exponents.
    #[test]
    fn zipf_ranks_in_range(n in 1u64..10_000, exp in 0.0f64..3.0, seed in 0u64..50) {
        use rand::SeedableRng;
        let z = Zipf::new(n, exp);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        for _ in 0..200 {
            let r = z.sample(&mut rng);
            prop_assert!((1..=n).contains(&r));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// End-to-end exactly-once across random workloads, systems, and
    /// migration timing.
    #[test]
    fn cluster_join_is_exactly_once(
        keyspace in 1u64..25,
        n_tuples in 1usize..400,
        instances in 1usize..9,
        tick_every in 1usize..40,
        system_pick in 0usize..3,
        seed in 0u64..1_000,
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let tuples: Vec<Tuple> = (0..n_tuples)
            .map(|i| {
                let key = rng.gen_range(0..keyspace);
                let ts = i as u64 * 13;
                if rng.gen_bool(0.5) {
                    Tuple::r(key, ts, i as u64)
                } else {
                    Tuple::s(key, ts, i as u64)
                }
            })
            .collect();
        let system = [SystemKind::FastJoin, SystemKind::BiStream, SystemKind::Broadcast][system_pick];
        let cfg = FastJoinConfig {
            instances_per_group: instances,
            theta: 1.1,
            monitor_period: 1,
            migration_cooldown: 0,
            ..FastJoinConfig::default()
        };
        let mut cluster = build_cluster(system, cfg);
        let mut results: Vec<JoinedPair> = Vec::new();
        for (i, t) in tuples.iter().enumerate() {
            cluster.ingest(*t);
            if i % tick_every == 0 {
                cluster.pump();
                cluster.tick();
            }
        }
        cluster.pump();
        cluster.tick();
        cluster.pump();
        results.append(&mut cluster.drain_results());

        let mut r: std::collections::HashMap<u64, u64> = Default::default();
        let mut s: std::collections::HashMap<u64, u64> = Default::default();
        for t in &tuples {
            match t.side {
                Side::R => *r.entry(t.key).or_insert(0) += 1,
                Side::S => *s.entry(t.key).or_insert(0) += 1,
            }
        }
        let expected: u64 = r.iter().map(|(k, n)| n * s.get(k).copied().unwrap_or(0)).sum();
        prop_assert_eq!(results.len() as u64, expected);
        let mut ids: Vec<_> = results.iter().map(JoinedPair::identity).collect();
        ids.sort_unstable();
        ids.dedup();
        prop_assert_eq!(ids.len() as u64, expected);
    }
}

proptest! {
    /// DpFit plans are feasible and never beat the exhaustive oracle.
    #[test]
    fn dpfit_is_feasible_and_bounded_by_exact(
        keys in key_stats_strategy(12),
        dst_stored in 0u64..500,
        dst_queue in 0u64..500,
    ) {
        use fastjoin::core::selection::DpFit;
        let stored: u64 = keys.iter().map(|k| k.stored).sum::<u64>() + 1_000;
        let queue: u64 = keys.iter().map(|k| k.queue).sum::<u64>() + 100;
        let src = InstanceLoad::new(stored, queue);
        let dst = InstanceLoad::new(dst_stored, dst_queue);
        let dp = DpFit::new().select(src, dst, &keys, 0.0);
        prop_assert!(plan_is_feasible(&dp));
        let exact = ExhaustiveFit::new().select(src, dst, &keys, 0.0);
        prop_assert!(dp.total_benefit <= exact.total_benefit + 1e-6,
            "dp {} beat exact {}", dp.total_benefit, exact.total_benefit);
    }

    /// Trace files round-trip arbitrary tuples.
    #[test]
    fn trace_round_trips_arbitrary_tuples(
        raw in prop::collection::vec((prop::bool::ANY, prop::num::u64::ANY, prop::num::u64::ANY, prop::num::u64::ANY), 0..200),
    ) {
        use fastjoin::datagen::{read_trace, write_trace};
        let tuples: Vec<Tuple> = raw
            .into_iter()
            .map(|(is_r, key, ts, payload)| {
                Tuple::new(if is_r { Side::R } else { Side::S }, key, ts, payload)
            })
            .collect();
        let mut buf = Vec::new();
        write_trace(&mut buf, tuples.iter().copied()).unwrap();
        let back = read_trace(buf.as_slice()).unwrap();
        prop_assert_eq!(back.len(), tuples.len());
        for (a, b) in back.iter().zip(&tuples) {
            prop_assert_eq!((a.side, a.key, a.ts, a.payload), (b.side, b.key, b.ts, b.payload));
        }
    }

    /// Arrival processes emit nondecreasing timestamps at roughly the
    /// configured rate, for both kinds.
    #[test]
    fn arrival_processes_are_monotone_and_rate_accurate(
        rate in 10.0f64..100_000.0,
        poisson in prop::bool::ANY,
        seed in 0u64..1_000,
    ) {
        use fastjoin::datagen::{ArrivalKind, ArrivalProcess};
        let kind = if poisson { ArrivalKind::Poisson } else { ArrivalKind::Constant };
        let mut p = ArrivalProcess::new(kind, rate, seed);
        let n = 500;
        let mut last = 0;
        for _ in 0..n {
            let ts = p.next_ts();
            prop_assert!(ts >= last);
            last = ts;
        }
        let expected_span = (n - 1) as f64 * 1_000_000.0 / rate;
        // Constant is exact; Poisson within 5x either way at 500 samples.
        let ratio = last as f64 / expected_span.max(1.0);
        prop_assert!(ratio > 0.2 && ratio < 5.0, "span ratio {ratio}");
    }

    /// The tiered sampler's hot share holds for arbitrary shapes.
    #[test]
    fn tiered_hot_share_holds(
        n in 10u64..5_000,
        hot_frac in 0.05f64..0.9,
        hot_share in 0.1f64..0.95,
        seed in 0u64..100,
    ) {
        use fastjoin::datagen::TieredSampler;
        use rand::SeedableRng;
        let s = TieredSampler::new(n, hot_frac, hot_share);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let draws = 4_000;
        let hot = (0..draws).filter(|_| s.sample(&mut rng) <= s.hot_keys()).count();
        let got = hot as f64 / draws as f64;
        prop_assert!((got - hot_share).abs() < 0.06,
            "hot share {got} vs configured {hot_share}");
    }
}
