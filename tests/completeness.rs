//! Cross-crate completeness tests: every matching pair is joined exactly
//! once, across partitioning strategies, migrations, and engines.

use std::collections::HashMap;

use fastjoin::baselines::{build_cluster, SystemKind};
use fastjoin::core::config::FastJoinConfig;
use fastjoin::core::tuple::{JoinedPair, Side, Tuple};
use fastjoin::sim::{SimConfig, Simulation};

fn expected_pairs(tuples: &[Tuple]) -> u64 {
    let mut r: HashMap<u64, u64> = HashMap::new();
    let mut s: HashMap<u64, u64> = HashMap::new();
    for t in tuples {
        match t.side {
            Side::R => *r.entry(t.key).or_insert(0) += 1,
            Side::S => *s.entry(t.key).or_insert(0) += 1,
        }
    }
    r.iter().map(|(k, n)| n * s.get(k).copied().unwrap_or(0)).sum()
}

/// A deterministic pseudo-random workload: skewed keys, interleaved sides.
fn workload(n: u64, keys: u64, hot_every: u64) -> Vec<Tuple> {
    let mut tuples = Vec::new();
    for i in 0..n {
        let key = if i % hot_every == 0 { 0 } else { (i * 2_654_435_761) % keys };
        let ts = i * 37;
        if (i / 3) % 2 == 0 {
            tuples.push(Tuple::r(key, ts, i));
        } else {
            tuples.push(Tuple::s(key, ts, i));
        }
    }
    tuples
}

fn assert_exactly_once(results: &[JoinedPair], expected: u64, label: &str) {
    assert_eq!(results.len() as u64, expected, "{label}: wrong result count");
    let mut ids: Vec<_> = results.iter().map(JoinedPair::identity).collect();
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(ids.len() as u64, expected, "{label}: duplicate results");
    for pair in results {
        assert_eq!(pair.left.side, Side::R, "{label}: orientation");
        assert_eq!(pair.right.side, Side::S, "{label}: orientation");
        assert_eq!(pair.left.key, pair.right.key, "{label}: key mismatch in a pair");
    }
}

#[test]
fn synchronous_cluster_exactly_once_for_all_systems() {
    let tuples = workload(3_000, 50, 4);
    let expected = expected_pairs(&tuples);
    for kind in [
        SystemKind::FastJoin,
        SystemKind::BiStream,
        SystemKind::BiStreamContRand,
        SystemKind::Broadcast,
    ] {
        let cfg = FastJoinConfig {
            instances_per_group: 8,
            theta: 1.3,
            monitor_period: 500,
            migration_cooldown: 0,
            ..FastJoinConfig::default()
        };
        let mut cluster = build_cluster(kind, cfg);
        let results = cluster.run_to_completion(tuples.clone());
        assert_exactly_once(&results, expected, kind.label());
        if kind == SystemKind::FastJoin {
            let migs = cluster.monitor(Side::R).unwrap().stats().triggered
                + cluster.monitor(Side::S).unwrap().stats().triggered;
            assert!(migs > 0, "the skewed workload must exercise migration");
        }
    }
}

#[test]
fn simulator_matches_synchronous_cluster_result_counts() {
    let tuples = workload(2_000, 30, 5);
    let expected = expected_pairs(&tuples);
    for system in SystemKind::headline() {
        let cfg = SimConfig {
            system,
            fastjoin: FastJoinConfig {
                instances_per_group: 6,
                theta: 1.4,
                monitor_period: 5_000,
                migration_cooldown: 10_000,
                ..FastJoinConfig::default()
            },
            max_time: 120_000_000,
            cost: fastjoin::sim::CostModel {
                per_comparison: 0.01,
                per_match: 0.01,
                ..fastjoin::sim::CostModel::default()
            },
            ..SimConfig::default()
        };
        let report = Simulation::new(cfg, tuples.clone().into_iter()).run();
        assert_eq!(report.results_total, expected, "{} in the simulator", system.label());
    }
}

#[test]
fn interleaved_migration_storms_preserve_completeness() {
    // Aggressive settings: migrate constantly while data flows.
    let cfg = FastJoinConfig {
        instances_per_group: 5,
        theta: 1.05,
        monitor_period: 100,
        migration_cooldown: 0,
        theta_gap: 0.0,
        ..FastJoinConfig::default()
    };
    let mut cluster = build_cluster(SystemKind::FastJoin, cfg);
    let tuples = workload(5_000, 20, 3);
    let expected = expected_pairs(&tuples);
    let mut results = Vec::new();
    for (i, t) in tuples.iter().enumerate() {
        cluster.ingest(*t);
        if i % 7 == 0 {
            cluster.tick(); // trigger migrations mid-flight
        }
        if i % 11 == 0 {
            cluster.pump();
            results.append(&mut cluster.drain_results());
        }
    }
    cluster.pump();
    cluster.tick();
    cluster.pump();
    results.append(&mut cluster.drain_results());
    assert_exactly_once(&results, expected, "migration storm");
    let migs = cluster.monitor(Side::R).unwrap().stats().triggered;
    assert!(migs > 3, "expected many migrations, got {migs}");
}

#[test]
fn empty_and_one_sided_streams_join_to_nothing() {
    let cfg = FastJoinConfig { instances_per_group: 3, ..FastJoinConfig::default() };
    let mut cluster = build_cluster(SystemKind::FastJoin, cfg.clone());
    assert!(cluster.run_to_completion(Vec::new()).is_empty());

    let mut cluster = build_cluster(SystemKind::FastJoin, cfg);
    let only_r: Vec<Tuple> = (0..100).map(|i| Tuple::r(i % 7, i, 0)).collect();
    assert!(cluster.run_to_completion(only_r).is_empty());
}
