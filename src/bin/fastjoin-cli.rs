//! `fastjoin-cli` — run FastJoin experiments from the command line.
//!
//! ```text
//! fastjoin-cli simulate [--system fastjoin|bistream|contrand|broadcast]
//!                       [--workload ridehail|gxy] [--x 0..2] [--y 0..2]
//!                       [--instances N] [--theta F] [--gb N] [--secs N]
//!                       [--selector greedy|safit|dp] [--cost hash|nested]
//!                       [--trace PATH]           # replay a saved trace
//!                       [--csv PATH]             # dump per-second series
//! fastjoin-cli compare  [--instances N] [--theta F] [--gb N] [--secs N]
//! fastjoin-cli topology [--instances N] [--orders N] [--tracks N]
//!                       [--rate N] [--theta F]
//!                       [--snapshot-ms N] [--snapshot-out PATH]
//!                       [--serve-metrics PORT]
//!                       # introspection plane: periodic RuntimeSnapshots
//!                       # to a JSONL sink and/or a live /metrics +
//!                       # /snapshot HTTP endpoint (all off by default)
//! fastjoin-cli census   [--locations N] [--orders N] [--tracks N]
//! fastjoin-cli gen      --out PATH [--workload ridehail|gxy] [--x ..] [--y ..]
//! fastjoin-cli bench    [--out PATH] [--deadline-secs N]
//!                       [--batch-size N] [--channel-cap N]
//!                       [--trace-out PATH] [--prom-out PATH]
//!                       # observability smoke suite → BENCH_smoke.json;
//!                       # includes a batched-vs-unbatched comparison and
//!                       # fails if batching loses or a scenario blows the
//!                       # wall-clock deadline
//! fastjoin-cli chaos    [--seeds N] [--tuples N] [--out PATH] [--class NAME]
//!                       [--batch-size N] [--channel-cap N]
//!                       [--trace-out PATH]
//!                       # seeded fault-schedule matrix → CHAOS_report.json;
//!                       # --trace-out ships the first failing run's journal
//! fastjoin-cli trace    --journal PATH [--round N] [--group r|s]
//!                       [--kind NAME] [--actor LABEL] [--allow-drops true]
//!                       # summarize a trace journal, or reconstruct one
//!                       # migration round's phase timeline; exits non-zero
//!                       # on dropped events unless --allow-drops
//! fastjoin-cli top      (--port N | --file PATH) [--iters N]
//!                       [--interval-ms N]
//!                       # live instances × load/queue/hot-keys table from
//!                       # a running topology's /snapshot endpoint or its
//!                       # --snapshot-out stream
//! ```
//!
//! The `chaos` command replays the fault classes of the in-tree chaos
//! suite — executor crashes at each migration-protocol phase, message
//! delay/drop/duplicate/reorder, and stalled (dropped-trigger) rounds —
//! across `--seeds` distinct seeds per class, asserting exactly-once
//! output against a single-threaded oracle on every run. Faults come from
//! the runtime's [`FaultPlan`]: executor kill-switches pinned to protocol
//! phases, per-channel delay on the (FIFO, lossless) data plane,
//! drop/dup/reorder on best-effort monitor reports, and swallowed
//! `MigrateCmd`s that only the round-timeout watchdog can clean up.
//!
//! Argument parsing is hand-rolled (no CLI dependency); every flag has a
//! sensible default matching the paper's setup.

use std::collections::HashMap;
use std::process::ExitCode;

use fastjoin::baselines::SystemKind;
use fastjoin::core::config::SelectorKind;
use fastjoin::core::tuple::{Side, Tuple};
use fastjoin::datagen::ridehail::{RideHailConfig, RideHailGen};
use fastjoin::datagen::stats::KeyCensus;
use fastjoin::datagen::synthetic::{SyntheticConfig, SyntheticGen};
use fastjoin::datagen::{read_trace, write_trace};
use fastjoin::runtime::{run_topology, RuntimeConfig};
use fastjoin::sim::experiment::{run_with, summarize, ExperimentParams};
use fastjoin::sim::{CostKind, CostModel};

/// Parsed `--flag value` arguments.
struct Args {
    flags: HashMap<String, String>,
}

impl Args {
    fn parse(argv: &[String]) -> Result<Self, String> {
        let mut flags = HashMap::new();
        let mut it = argv.iter();
        while let Some(a) = it.next() {
            let Some(name) = a.strip_prefix("--") else {
                return Err(format!("unexpected argument {a:?} (flags are --name value)"));
            };
            let value = it.next().ok_or_else(|| format!("flag --{name} needs a value"))?.clone();
            flags.insert(name.to_string(), value);
        }
        Ok(Args { flags })
    }

    fn get<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.flags.get(name) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("bad value for --{name}: {v:?}")),
        }
    }

    fn get_str(&self, name: &str, default: &str) -> String {
        self.flags.get(name).cloned().unwrap_or_else(|| default.to_string())
    }
}

fn parse_system(s: &str) -> Result<SystemKind, String> {
    match s {
        "fastjoin" => Ok(SystemKind::FastJoin),
        "bistream" => Ok(SystemKind::BiStream),
        "contrand" => Ok(SystemKind::BiStreamContRand),
        "broadcast" => Ok(SystemKind::Broadcast),
        other => Err(format!("unknown system {other:?}")),
    }
}

fn build_workload(args: &Args) -> Result<Vec<Tuple>, String> {
    if let Some(path) = args.flags.get("trace") {
        let file = std::fs::File::open(path).map_err(|e| format!("open {path}: {e}"))?;
        return read_trace(file).map_err(|e| e.to_string());
    }
    match args.get_str("workload", "ridehail").as_str() {
        "ridehail" => {
            let gb: u64 = args.get("gb", 10)?;
            Ok(RideHailGen::new(&RideHailConfig::scaled_to_gb(gb)).collect())
        }
        "gxy" => {
            let x: u8 = args.get("x", 1)?;
            let y: u8 = args.get("y", 1)?;
            if x > 2 || y > 2 {
                return Err(format!(
                    "gxy exponents are 0, 1 or 2 (the paper's groups); got x={x} y={y}"
                ));
            }
            Ok(SyntheticGen::new(&SyntheticConfig::group(x, y)).collect())
        }
        other => Err(format!("unknown workload {other:?}")),
    }
}

fn cmd_simulate(args: &Args) -> Result<(), String> {
    let system = parse_system(&args.get_str("system", "fastjoin"))?;
    let selector = match args.get_str("selector", "greedy").as_str() {
        "greedy" => SelectorKind::GreedyFit,
        "safit" => SelectorKind::SaFit,
        "dp" => SelectorKind::Dp,
        other => return Err(format!("unknown selector {other:?}")),
    };
    let cost = match args.get_str("cost", "hash").as_str() {
        "hash" => CostModel::default(),
        "nested" => CostModel {
            kind: CostKind::NestedLoop,
            per_comparison: CostModel::default().per_comparison / 50.0,
            per_match: CostModel::default().per_match / 50.0,
            ..CostModel::default()
        },
        other => return Err(format!("unknown cost model {other:?}")),
    };
    let params = ExperimentParams {
        instances: args.get("instances", 48)?,
        theta: args.get("theta", 2.2)?,
        gb: args.get("gb", 10)?,
        max_secs: args.get("secs", 60)?,
        selector,
        cost,
        seed: args.get("seed", 0xD1D1)?,
    };
    let workload = build_workload(args)?;
    println!(
        "simulating {} over {} tuples ({} instances, Θ = {})",
        system.label(),
        workload.len(),
        params.instances,
        params.theta
    );
    let report = run_with(system, &params, workload.into_iter());
    let s = summarize(system, &report);
    println!("results           : {}", report.results_total);
    println!("avg throughput    : {:.0} results/s", s.throughput);
    println!("avg latency       : {:.2} ms", s.latency_ms);
    println!("avg imbalance LI  : {:.2}", s.imbalance);
    println!("migrations        : {}", s.migrations);
    println!("sim duration      : {:.1} s", report.duration as f64 / 1e6);
    if let Some(path) = args.flags.get("csv") {
        let file = std::fs::File::create(path).map_err(|e| format!("create {path}: {e}"))?;
        fastjoin::sim::write_report_csv(file, &report).map_err(|e| e.to_string())?;
        println!("per-second series : {path}");
    }
    Ok(())
}

fn cmd_compare(args: &Args) -> Result<(), String> {
    let params = ExperimentParams {
        instances: args.get("instances", 48)?,
        theta: args.get("theta", 2.2)?,
        gb: args.get("gb", 10)?,
        max_secs: args.get("secs", 60)?,
        ..ExperimentParams::default()
    };
    println!(
        "comparing the paper's three systems ({} instances, Θ = {}, {} GB scale)",
        params.instances, params.theta, params.gb
    );
    println!(
        "{:<18} {:>14} {:>12} {:>8} {:>6}",
        "system", "throughput/s", "latency ms", "LI", "migs"
    );
    let mut first = None;
    for sys in SystemKind::headline() {
        let workload = build_workload(args)?;
        let s = summarize(sys, &run_with(sys, &params, workload.into_iter()));
        println!(
            "{:<18} {:>14.0} {:>12.2} {:>8.2} {:>6}",
            s.system, s.throughput, s.latency_ms, s.imbalance, s.migrations
        );
        if first.is_none() {
            first = Some(s.throughput);
        } else if sys == SystemKind::BiStream {
            let gain = (first.unwrap_or(0.0) / s.throughput.max(1.0) - 1.0) * 100.0;
            println!("FastJoin vs BiStream: {gain:+.1} % (paper: +31.7 %)");
        }
    }
    Ok(())
}

fn cmd_topology(args: &Args) -> Result<(), String> {
    let cfg = RuntimeConfig {
        system: parse_system(&args.get_str("system", "fastjoin"))?,
        fastjoin: fastjoin::core::config::FastJoinConfig {
            instances_per_group: args.get("instances", 8)?,
            theta: args.get("theta", 2.2)?,
            migration_cooldown: 100_000,
            ..Default::default()
        },
        queue_cap: args.get("queue-cap", 1024)?,
        dispatcher_shards: args.get("dispatcher-shards", 1)?,
        monitor_period_ms: args.get("monitor-ms", 25)?,
        rate_limit: {
            let r: f64 = args.get("rate", 0.0)?;
            (r > 0.0).then_some(r)
        },
        snapshot_interval_ms: args.get("snapshot-ms", 0)?,
        serve_metrics: match args.flags.get("serve-metrics") {
            None => None,
            Some(v) => {
                Some(v.parse().map_err(|_| format!("bad value for --serve-metrics: {v:?}"))?)
            }
        },
        snapshot_path: args.flags.get("snapshot-out").cloned(),
        ..RuntimeConfig::default()
    };
    cfg.validate()?;
    let wl = RideHailGen::new(&RideHailConfig {
        orders: args.get("orders", 50_000)?,
        tracks: args.get("tracks", 200_000)?,
        locations: args.get("locations", 2_000)?,
        ..RideHailConfig::default()
    });
    println!("running threaded topology ({} join threads)…", 2 * cfg.fastjoin.instances_per_group);
    if let Some(port) = cfg.serve_metrics {
        println!("serving /metrics and /snapshot on http://127.0.0.1:{port}");
    }
    let report = run_topology(&cfg, wl);
    println!("results        : {}", report.results_total);
    println!("throughput     : {:.0} results/s", report.results_per_sec());
    println!("mean latency   : {:.2} ms", report.mean_latency_us() / 1000.0);
    println!("migrations     : {}", report.migrations());
    let audited: usize = report.decisions.iter().map(Vec::len).sum();
    if audited > 0 {
        println!("decisions      : {audited} audited (see the report's per-group decisions)");
    }
    Ok(())
}

fn cmd_census(args: &Args) -> Result<(), String> {
    let cfg = RideHailConfig {
        locations: args.get("locations", 20_000)?,
        orders: args.get("orders", 200_000)?,
        tracks: args.get("tracks", 800_000)?,
        ..RideHailConfig::default()
    };
    let tuples: Vec<Tuple> = RideHailGen::new(&cfg).collect();
    for (name, side) in [("orders", Side::R), ("tracks", Side::S)] {
        let census = KeyCensus::from_keys(tuples.iter().filter(|t| t.side == side).map(|t| t.key));
        println!(
            "{name}: {} tuples, {} keys, c = {:.1}, 80% of tuples in {:.1}% of locations",
            census.total(),
            census.distinct_keys(),
            census.mean_tuples_per_key(),
            census.fraction_of_keys_for_share(0.8, cfg.locations as usize) * 100.0
        );
    }
    Ok(())
}

fn cmd_gen(args: &Args) -> Result<(), String> {
    let path = args.flags.get("out").ok_or_else(|| "gen requires --out PATH".to_string())?;
    let workload = build_workload(args)?;
    let file = std::fs::File::create(path).map_err(|e| format!("create {path}: {e}"))?;
    let n = write_trace(file, workload).map_err(|e| e.to_string())?;
    println!("wrote {n} tuples to {path}");
    Ok(())
}

/// The observability smoke suite: three short threaded-topology runs
/// (skewed, uniform, windowed) whose reports are written as one JSON file
/// and validated for the series CI depends on. A missing required series
/// (throughput, latency percentiles, LI, or — on the skewed run — at least
/// one migration span) is an error, so the CI job fails rather than
/// silently uploading a hollow artifact.
fn cmd_bench(args: &Args) -> Result<(), String> {
    use fastjoin::core::config::{FastJoinConfig, WindowConfig};
    use fastjoin::core::json::Json;
    use fastjoin::runtime::RuntimeReport;

    let out = args.get_str("out", "BENCH_smoke.json");
    // Wall-clock budget per scenario: a wedged or pathologically slow run
    // must fail the suite (non-zero exit) instead of stalling CI.
    let deadline = std::time::Duration::from_secs(args.get("deadline-secs", 120)?);
    // Data-plane knobs under test: every scenario runs batched at
    // `--batch-size` over `--channel-cap`-bounded channels, and the suite
    // also runs batched-vs-unbatched twins of the skewed workload to
    // measure (and gate) the batching win.
    let batch_size: usize = args.get("batch-size", RuntimeConfig::default().batch_size)?;
    let channel_cap: usize = args.get("channel-cap", 256)?;
    let dispatcher_shards: usize = args.get("dispatcher-shards", 1)?;
    if dispatcher_shards == 0 {
        return Err("--dispatcher-shards must be ≥ 1 (1 = unsharded)".to_string());
    }
    if batch_size < 2 {
        return Err(format!(
            "--batch-size must be ≥ 2 so the batched run differs from the \
             unbatched baseline (got {batch_size})"
        ));
    }
    if channel_cap < batch_size {
        return Err(format!(
            "--channel-cap ({channel_cap}) must be at least --batch-size ({batch_size}): \
             a channel smaller than one batch starves the dispatcher"
        ));
    }
    let mut failures = Vec::new();
    let mut deadline_check = |name: &str, started: std::time::Instant| {
        let took = started.elapsed();
        if took > deadline {
            failures.push(format!(
                "{name}: exceeded the {}s scenario deadline (took {:.1}s)",
                deadline.as_secs(),
                took.as_secs_f64()
            ));
        }
    };
    let base = |n: usize| RuntimeConfig {
        system: SystemKind::FastJoin,
        fastjoin: FastJoinConfig {
            instances_per_group: n,
            theta: 1.5,
            migration_cooldown: 50_000,
            ..FastJoinConfig::default()
        },
        queue_cap: channel_cap,
        batch_size,
        dispatcher_shards,
        monitor_period_ms: 20,
        rate_limit: None,
        ..RuntimeConfig::default()
    };

    // Skewed: one hot key carries 3/4 of the traffic; throttled so the run
    // spans many monitor ticks and real migration rounds happen. Retried a
    // few times because migration timing is scheduler-dependent.
    let skewed_workload = || {
        (0..30_000u64)
            .map(|i| {
                let key = if i % 4 != 0 { 999 } else { i % 97 };
                if i % 5 == 0 {
                    Tuple::r(key, 0, i)
                } else {
                    Tuple::s(key, 0, i)
                }
            })
            .collect::<Vec<_>>()
    };
    let mut skewed = None;
    let started = std::time::Instant::now();
    for _ in 0..3 {
        let mut cfg = base(4);
        cfg.rate_limit = Some(60_000.0);
        let run_started = std::time::Instant::now();
        let report = run_topology(&cfg, skewed_workload());
        let elapsed = run_started.elapsed();
        let has_span = report.migration_spans.iter().any(|s| !s.is_empty());
        let keep = skewed.is_none() || has_span;
        if keep {
            skewed = Some((report, elapsed));
        }
        if has_span {
            break;
        }
    }
    let (skewed, skewed_elapsed) = skewed.expect("at least one skewed run completed");
    deadline_check("skewed", started);

    // Tracing overhead check: the same skewed workload with tracing off.
    // Both runs are throttled to 60k tuples/s, so their throughput should
    // be indistinguishable; a >10% gap means tracing leaked real work onto
    // the hot path and fails the suite. Dropped events at the default ring
    // size fail it too — the journal must be complete to be trustworthy.
    let started = std::time::Instant::now();
    let untraced_elapsed = {
        let mut cfg = base(4);
        cfg.rate_limit = Some(60_000.0);
        cfg.trace = fastjoin::core::trace::TraceConfig::disabled();
        let run_started = std::time::Instant::now();
        let _ = run_topology(&cfg, skewed_workload());
        run_started.elapsed()
    };
    deadline_check("skewed-untraced", started);
    let traced_tps = 30_000.0 / skewed_elapsed.as_secs_f64().max(1e-9);
    let untraced_tps = 30_000.0 / untraced_elapsed.as_secs_f64().max(1e-9);
    let overhead_pct = (untraced_tps - traced_tps) / untraced_tps * 100.0;
    let mut trace_failures = Vec::new();
    if traced_tps < untraced_tps * 0.9 {
        trace_failures.push(format!(
            "tracing overhead: traced skewed run achieved {traced_tps:.0} tuples/s \
             vs {untraced_tps:.0} untraced ({overhead_pct:.1}% slower; budget is 10%)"
        ));
    }
    if skewed.trace.dropped() != 0 {
        trace_failures.push(format!(
            "tracing dropped {} events at the default ring size",
            skewed.trace.dropped()
        ));
    }

    // Introspection overhead check, same shape as the tracing gate: the
    // skewed workload with 100 ms snapshots streaming to a file sink must
    // stay within 10% of the plane-off run. The stream itself is also
    // validated — every line a parseable snapshot, seq monotone.
    let started = std::time::Instant::now();
    let snap_path =
        std::env::temp_dir().join(format!("fastjoin-bench-snapshots-{}.jsonl", std::process::id()));
    let snap_path_str = snap_path.to_string_lossy().to_string();
    let _ = std::fs::remove_file(&snap_path);
    let snap_elapsed = {
        let mut cfg = base(4);
        cfg.rate_limit = Some(60_000.0);
        cfg.snapshot_interval_ms = 100;
        cfg.snapshot_path = Some(snap_path_str.clone());
        let run_started = std::time::Instant::now();
        let _ = run_topology(&cfg, skewed_workload());
        run_started.elapsed()
    };
    deadline_check("skewed-snapshots", started);
    let snap_tps = 30_000.0 / snap_elapsed.as_secs_f64().max(1e-9);
    let snap_overhead_pct = (traced_tps - snap_tps) / traced_tps.max(1e-9) * 100.0;
    if snap_tps < traced_tps * 0.9 {
        trace_failures.push(format!(
            "introspection overhead: 100 ms snapshots achieved {snap_tps:.0} tuples/s \
             vs {traced_tps:.0} with the plane off ({snap_overhead_pct:.1}% slower; budget is 10%)"
        ));
    }
    let snap_stream = std::fs::read_to_string(&snap_path).unwrap_or_default();
    let mut snapshots_seen = 0u64;
    let mut prev_seq = 0u64;
    for line in snap_stream.lines() {
        match Json::parse(line) {
            Ok(j) => {
                let seq = j.get("seq").and_then(Json::as_u64).unwrap_or(0);
                if seq <= prev_seq {
                    trace_failures
                        .push(format!("snapshot stream seq not monotone at snapshot {seq}"));
                    break;
                }
                prev_seq = seq;
                snapshots_seen += 1;
            }
            Err(e) => {
                trace_failures.push(format!("snapshot stream has an unparseable line: {e}"));
                break;
            }
        }
    }
    if snapshots_seen == 0 {
        trace_failures.push("snapshot run produced no snapshots in the stream sink".to_string());
    }
    let _ = std::fs::remove_file(&snap_path);

    // Batched-vs-unbatched comparison, two angles:
    //
    //  * throughput — unthrottled skewed runs, best of three per mode so a
    //    scheduler hiccup doesn't decide the verdict; batching must beat
    //    the scalar baseline or the suite fails (amortizing per-message
    //    channel overhead is the whole point of the batch plane);
    //  * route-flip latency — a throttled unbatched twin of the skewed
    //    scenario above; draining control to empty every dispatcher
    //    iteration must keep flips fast even when data rides batches, so
    //    a grossly slower batched flip median fails the suite.
    let mut batch_failures = Vec::new();
    let started = std::time::Instant::now();
    let measure = |batch: usize, shards: usize| -> f64 {
        let mut best = 0.0f64;
        for _ in 0..3 {
            let mut cfg = base(4);
            cfg.batch_size = batch;
            cfg.dispatcher_shards = shards;
            let run_started = std::time::Instant::now();
            let report = run_topology(&cfg, skewed_workload());
            let tps = report.tuples_ingested as f64 / run_started.elapsed().as_secs_f64().max(1e-9);
            best = best.max(tps);
        }
        best
    };
    let unbatched_tps = measure(1, 1);
    let batched_tps = measure(batch_size, 1);
    deadline_check("batching-throughput", started);
    if batched_tps <= unbatched_tps {
        batch_failures.push(format!(
            "batching regression: batch_size {batch_size} achieved {batched_tps:.0} tuples/s \
             vs {unbatched_tps:.0} unbatched on the skewed workload"
        ));
    }

    // Dispatcher shard scaling: the same unthrottled skewed workload at 1,
    // 2, and 4 shards (1 shard is the batched run above). The numbers are
    // always recorded; the monotonic-improvement gate only applies on a
    // host with ≥ 4 cores — on fewer cores extra shard threads just take
    // turns on the same CPUs and scaling is noise, not signal.
    let started = std::time::Instant::now();
    let shard1_tps = batched_tps;
    let shard2_tps = measure(batch_size, 2);
    let shard4_tps = measure(batch_size, 4);
    deadline_check("shard-scaling", started);
    let cores = std::thread::available_parallelism().map(std::num::NonZeroUsize::get).unwrap_or(1);
    if cores >= 4 && !(shard2_tps > shard1_tps && shard4_tps > shard2_tps) {
        batch_failures.push(format!(
            "shard scaling regression on a {cores}-core host: skewed throughput must \
             improve monotonically 1→2→4 shards, got {shard1_tps:.0} → {shard2_tps:.0} \
             → {shard4_tps:.0} tuples/s"
        ));
    }

    let started = std::time::Instant::now();
    let mut unbatched_skewed = None;
    for _ in 0..3 {
        let mut cfg = base(4);
        cfg.batch_size = 1;
        cfg.rate_limit = Some(60_000.0);
        let report = run_topology(&cfg, skewed_workload());
        let has_span = report.migration_spans.iter().any(|s| !s.is_empty());
        let keep = unbatched_skewed.is_none() || has_span;
        if keep {
            unbatched_skewed = Some(report);
        }
        if has_span {
            break;
        }
    }
    let unbatched_skewed = unbatched_skewed.expect("at least one unbatched skewed run completed");
    deadline_check("skewed-unbatched", started);
    let median_flip = |r: &RuntimeReport| -> Option<u64> {
        let mut flips: Vec<u64> =
            r.migration_spans.iter().flatten().filter_map(|s| s.route_flip_us).collect();
        if flips.is_empty() {
            return None;
        }
        flips.sort_unstable();
        Some(flips[flips.len() / 2])
    };
    let flip_batched = median_flip(&skewed);
    let flip_unbatched = median_flip(&unbatched_skewed);
    if let (Some(b), Some(u)) = (flip_batched, flip_unbatched) {
        // Tight non-regression bound: with the control fast-path (flips
        // bypass the batch-age deadline and only flush the destination's
        // pending batch) a batched flip should cost about the same as an
        // unbatched one. 2x plus a 1 ms absolute floor absorbs scheduler
        // noise at smoke scale without re-admitting the old regression,
        // where flips queued behind a full dispatch tick.
        if b > u * 2 + 1_000 {
            batch_failures.push(format!(
                "route-flip latency regressed under batching: p50 {b} µs batched \
                 vs {u} µs unbatched (budget: 2x + 1 ms)"
            ));
        }
    }

    // Uniform: every key equally hot; exercises the static happy path.
    let uniform: Vec<Tuple> = (0..20u64)
        .flat_map(|i| (0..10u64).flat_map(move |k| [Tuple::r(k, 0, i), Tuple::s(k, 0, i)]))
        .collect();
    let started = std::time::Instant::now();
    let uniform = run_topology(&base(4), uniform);
    deadline_check("uniform", started);

    // Windowed: a sliding window over a throttled stream (expiry path).
    let mut wcfg = base(2);
    wcfg.fastjoin.window = Some(WindowConfig { sub_windows: 4, sub_window_len: 50_000 });
    wcfg.rate_limit = Some(20_000.0);
    let windowed_workload: Vec<Tuple> = (0..2_000u64)
        .map(|i| if i % 2 == 0 { Tuple::r(i % 13, 0, i) } else { Tuple::s(i % 13, 0, i) })
        .collect();
    let started = std::time::Instant::now();
    let windowed = run_topology(&wcfg, windowed_workload);
    deadline_check("windowed", started);
    failures.append(&mut trace_failures);
    failures.append(&mut batch_failures);

    // Validate before writing: the suite's contract with CI.
    let mut check = |name: &str, r: &RuntimeReport, expect_migration: bool| {
        if r.probes_total == 0 {
            failures.push(format!("{name}: no probes completed"));
        }
        if r.throughput.is_empty() {
            failures.push(format!("{name}: throughput series is empty"));
        }
        if r.latency.count() == 0
            || r.latency.quantile(0.5).is_none()
            || r.latency.quantile(0.99).is_none()
        {
            failures.push(format!("{name}: latency percentiles missing"));
        }
        if r.imbalance
            .iter()
            .all(|s| s.as_ref().is_none_or(fastjoin::core::metrics::TimeSeries::is_empty))
        {
            failures.push(format!("{name}: no LI (imbalance) series recorded"));
        }
        if expect_migration {
            if r.migrations() == 0 {
                failures.push(format!("{name}: skewed run triggered no migrations"));
            }
            if r.migration_spans.iter().all(Vec::is_empty) {
                failures.push(format!("{name}: no migration spans traced"));
            }
        }
    };
    check("skewed", &skewed, true);
    check("uniform", &uniform, false);
    check("windowed", &windowed, false);

    let doc = Json::obj(vec![
        ("schema_version", Json::uint(1)),
        ("suite", Json::str("fastjoin bench smoke")),
        (
            "tracing",
            Json::obj(vec![
                ("events", Json::uint(skewed.trace.len() as u64)),
                ("dropped", Json::uint(skewed.trace.dropped())),
                ("traced_tuples_per_sec", Json::Num(traced_tps)),
                ("untraced_tuples_per_sec", Json::Num(untraced_tps)),
                ("overhead_pct", Json::Num(overhead_pct)),
            ]),
        ),
        (
            "introspection",
            Json::obj(vec![
                ("snapshot_interval_ms", Json::uint(100)),
                ("snapshots", Json::uint(snapshots_seen)),
                ("snapshot_tuples_per_sec", Json::Num(snap_tps)),
                ("plane_off_tuples_per_sec", Json::Num(traced_tps)),
                ("overhead_pct", Json::Num(snap_overhead_pct)),
            ]),
        ),
        (
            "batching",
            Json::obj(vec![
                ("batch_size", Json::uint(batch_size as u64)),
                ("channel_cap", Json::uint(channel_cap as u64)),
                ("dispatcher_shards", Json::uint(dispatcher_shards as u64)),
                ("batched_tuples_per_sec", Json::Num(batched_tps)),
                ("unbatched_tuples_per_sec", Json::Num(unbatched_tps)),
                ("speedup_pct", Json::Num((batched_tps / unbatched_tps.max(1.0) - 1.0) * 100.0)),
                ("route_flip_p50_us_batched", flip_batched.map_or(Json::Null, Json::uint)),
                ("route_flip_p50_us_unbatched", flip_unbatched.map_or(Json::Null, Json::uint)),
            ]),
        ),
        (
            "shard_scaling",
            Json::obj(vec![
                ("cores", Json::uint(cores as u64)),
                ("gate_enforced", Json::Bool(cores >= 4)),
                ("tuples_per_sec_1_shard", Json::Num(shard1_tps)),
                ("tuples_per_sec_2_shards", Json::Num(shard2_tps)),
                ("tuples_per_sec_4_shards", Json::Num(shard4_tps)),
            ]),
        ),
        (
            "workloads",
            Json::obj(vec![
                ("skewed", skewed.to_json()),
                ("uniform", uniform.to_json()),
                ("windowed", windowed.to_json()),
            ]),
        ),
    ]);
    std::fs::write(&out, doc.to_string_pretty() + "\n").map_err(|e| format!("write {out}: {e}"))?;
    println!("wrote {out}");

    // Bench history: append the headline numbers to a JSONL ledger keyed
    // by git revision + config, and warn (never fail — machines differ)
    // when batched throughput drops more than 20% against the previous
    // entry for the same configuration.
    let history_path = args.get_str("history", "BENCH_history.jsonl");
    let rev = std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map_or_else(
            || "unknown".to_string(),
            |o| String::from_utf8_lossy(&o.stdout).trim().to_string(),
        );
    let ts = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_secs());
    let config_key = format!("batch{batch_size}-cap{channel_cap}-shards{dispatcher_shards}");
    if let Ok(prior) = std::fs::read_to_string(&history_path) {
        let prev_tps = prior
            .lines()
            .rev()
            .filter_map(|l| Json::parse(l).ok())
            .find(|j| j.get("config").and_then(Json::as_str) == Some(config_key.as_str()))
            .and_then(|j| j.get("batched_tuples_per_sec").and_then(Json::as_num));
        if let Some(prev) = prev_tps {
            if prev > 0.0 && batched_tps < prev * 0.8 {
                eprintln!(
                    "warning: batched throughput {batched_tps:.0} tuples/s is \
                     {:.1}% below the previous {history_path} entry for {config_key} \
                     ({prev:.0} tuples/s)",
                    (1.0 - batched_tps / prev) * 100.0
                );
            }
        }
    }
    let entry = Json::obj(vec![
        ("ts", Json::uint(ts)),
        ("rev", Json::str(rev)),
        ("config", Json::str(config_key)),
        ("batched_tuples_per_sec", Json::Num(batched_tps)),
        ("unbatched_tuples_per_sec", Json::Num(unbatched_tps)),
        ("traced_tuples_per_sec", Json::Num(traced_tps)),
        ("snapshot_tuples_per_sec", Json::Num(snap_tps)),
        ("skewed_results", Json::uint(skewed.results_total)),
        ("skewed_p99_latency_us", Json::uint(skewed.latency.quantile(0.99).unwrap_or(0))),
    ]);
    {
        use std::io::Write as _;
        let appended = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&history_path)
            .and_then(|mut f| writeln!(f, "{}", entry.to_string_compact()));
        match appended {
            Ok(()) => println!("appended {history_path}"),
            Err(e) => eprintln!("warning: could not append {history_path}: {e}"),
        }
    }

    if let Some(path) = args.flags.get("trace-out") {
        std::fs::write(path, skewed.trace.to_jsonl()).map_err(|e| format!("write {path}: {e}"))?;
        println!("wrote {path} ({} trace events)", skewed.trace.len());
    }
    if let Some(path) = args.flags.get("prom-out") {
        let text = skewed.registry.to_prometheus();
        fastjoin::core::telemetry::validate_prometheus(&text)
            .map_err(|e| format!("prometheus output failed validation: {e}"))?;
        std::fs::write(path, &text).map_err(|e| format!("write {path}: {e}"))?;
        println!("wrote {path}");
    }
    println!(
        "skewed : {} results, {} migrations, {} spans, p99 latency {} µs",
        skewed.results_total,
        skewed.migrations(),
        skewed.migration_spans.iter().map(Vec::len).sum::<usize>(),
        skewed.latency.quantile(0.99).unwrap_or(0)
    );
    println!("uniform: {} results", uniform.results_total);
    println!("windowed: {} results", windowed.results_total);
    println!(
        "batching: {batched_tps:.0} tuples/s at batch {batch_size} \
         vs {unbatched_tps:.0} unbatched ({:+.1} %)",
        (batched_tps / unbatched_tps.max(1.0) - 1.0) * 100.0
    );
    println!(
        "shards  : {shard1_tps:.0} / {shard2_tps:.0} / {shard4_tps:.0} tuples/s \
         at 1 / 2 / 4 dispatcher shards ({cores} cores, gate {})",
        if cores >= 4 { "enforced" } else { "recorded only" }
    );
    if failures.is_empty() {
        Ok(())
    } else {
        Err(format!("bench report incomplete:\n  {}", failures.join("\n  ")))
    }
}

/// One fault class of the chaos matrix: a name and a `FaultPlan` factory.
type ChaosClass = (&'static str, fn(u64) -> fastjoin::runtime::FaultPlan);

/// The chaos matrix: every fault class of the in-tree suite, replayed
/// across `--seeds` distinct seeds each, every run checked exactly-once
/// against a single-threaded oracle. The run-by-run outcome is written as
/// a JSON failure report (`--out`, default `CHAOS_report.json`) so CI can
/// upload it as an artifact when the command exits non-zero.
fn cmd_chaos(args: &Args) -> Result<(), String> {
    use fastjoin::core::config::FastJoinConfig;
    use fastjoin::core::json::Json;
    use fastjoin::runtime::{
        try_run_topology, ChaosPolicy, CrashFault, CrashPhase, FaultPlan, SupervisionConfig,
    };

    let seeds: u64 = args.get("seeds", 100)?;
    let tuples_n: u64 = args.get("tuples", 6_000)?;
    let out = args.get_str("out", "CHAOS_report.json");
    let only = args.flags.get("class").cloned();
    // Data-plane knobs: CI runs the matrix once unbatched (`--batch-size
    // 1`, the historical fault space) and once batched, so batch
    // boundaries straddling protocol messages get the full seed sweep.
    let batch_size: usize = args.get("batch-size", 1)?;
    let channel_cap: usize = args.get("channel-cap", 256)?;
    let dispatcher_shards: usize = args.get("dispatcher-shards", 1)?;
    if dispatcher_shards == 0 {
        return Err("--dispatcher-shards must be ≥ 1 (1 = unsharded)".to_string());
    }
    if batch_size < 1 {
        return Err(format!("--batch-size must be ≥ 1 (1 = unbatched), got {batch_size}"));
    }
    if channel_cap < batch_size {
        return Err(format!(
            "--channel-cap ({channel_cap}) must be at least --batch-size ({batch_size}): \
             a channel smaller than one batch starves the dispatcher"
        ));
    }

    fn crash_everywhere(seed: u64, phase: CrashPhase) -> FaultPlan {
        let crashes = (0..2)
            .flat_map(|group| (0..4).map(move |instance| CrashFault { group, instance, phase }))
            .collect();
        FaultPlan { seed, crashes, ..FaultPlan::default() }
    }
    let classes: &[ChaosClass] = &[
        ("crash-pre-migstart", |s| crash_everywhere(s, CrashPhase::PreMigStart)),
        ("crash-handoff-forward", |s| crash_everywhere(s, CrashPhase::BetweenHandoffAndForward)),
        ("crash-pre-route-flip", |s| crash_everywhere(s, CrashPhase::PreRouteFlip)),
        ("crash-steady-state", |s| {
            crash_everywhere(s, CrashPhase::SteadyState { after_msgs: 400 })
        }),
        ("channel-chaos", |s| FaultPlan {
            seed: s,
            instance_chaos: ChaosPolicy {
                delay_1_in: 64,
                delay_max_us: 300,
                ..ChaosPolicy::default()
            },
            monitor_chaos: ChaosPolicy {
                delay_1_in: 16,
                delay_max_us: 500,
                drop_1_in: 4,
                dup_1_in: 4,
                reorder_1_in: 4,
            },
            ..FaultPlan::default()
        }),
        ("stalled-round", |s| FaultPlan { seed: s, drop_migrate_cmds: 2, ..FaultPlan::default() }),
        // Control-plane fault classes: kill the supervised control
        // executors themselves. Sequencer and shard kills only fire with
        // `--dispatcher-shards >= 2` (the unsharded dispatcher has neither
        // executor, so the switches are inert and the runs are plain
        // oracle checks).
        ("kill-sequencer", |s| FaultPlan {
            seed: s,
            crashes: vec![CrashFault {
                group: 0,
                instance: 0,
                phase: CrashPhase::SequencerBarrier { at_publish: 1 },
            }],
            ..FaultPlan::default()
        }),
        ("kill-shard", |s| FaultPlan {
            seed: s,
            // One kill per possible shard; entries for shards the run
            // doesn't have are inert.
            crashes: (0..4)
                .map(|k| CrashFault {
                    group: 0,
                    instance: k,
                    phase: CrashPhase::ShardSnapshotInstall { at_install: 1 },
                })
                .collect(),
            ..FaultPlan::default()
        }),
        ("kill-monitor", |s| FaultPlan {
            seed: s,
            crashes: (0..2)
                .map(|g| CrashFault {
                    group: g,
                    instance: 0,
                    phase: CrashPhase::MonitorMidRound { at_round: 1 },
                })
                .collect(),
            ..FaultPlan::default()
        }),
    ];

    // Same skewed shape as the in-tree suite: twelve medium-hot keys so
    // GreedyFit migrates eagerly with probes in flight mid-round.
    let workload = |salt: u64| -> Vec<Tuple> {
        (0..tuples_n)
            .map(|i| {
                let key = if i % 4 != 0 { 1000 + ((i + salt) % 12) } else { (i + salt) % 97 };
                if i % 5 == 0 {
                    Tuple::r(key, 0, i)
                } else {
                    Tuple::s(key, 0, i)
                }
            })
            .collect()
    };
    let oracle = |tuples: &[Tuple]| -> u64 {
        let mut r = HashMap::new();
        let mut s = HashMap::new();
        for t in tuples {
            match t.side {
                Side::R => *r.entry(t.key).or_insert(0u64) += 1,
                Side::S => *s.entry(t.key).or_insert(0u64) += 1,
            }
        }
        r.iter().map(|(k, c)| c * s.get(k).copied().unwrap_or(0)).sum()
    };

    let mut runs = 0u64;
    let mut failures: Vec<Json> = Vec::new();
    // Journal of the first run that violated the oracle, kept for
    // `--trace-out`. Runs that die outright (`Err` from the runtime)
    // never produced a report, so they have no journal to ship.
    let mut failing_journal: Option<String> = None;
    let started = std::time::Instant::now();
    for (name, plan_for) in classes {
        if let Some(filter) = &only {
            if filter != name {
                continue;
            }
        }
        let mut class_bad = 0u64;
        for seed in 0..seeds {
            runs += 1;
            let tuples = workload(seed);
            let expected = oracle(&tuples);
            let cfg = RuntimeConfig {
                system: SystemKind::FastJoin,
                fastjoin: FastJoinConfig {
                    instances_per_group: 4,
                    theta: 1.2,
                    migration_cooldown: 2_000,
                    ..FastJoinConfig::default()
                },
                queue_cap: channel_cap,
                batch_size,
                dispatcher_shards,
                monitor_period_ms: 2,
                rate_limit: Some(120_000.0),
                supervision: SupervisionConfig {
                    max_restarts: 16,
                    checkpoint_every: 32,
                    round_timeout_ms: 25,
                    ..SupervisionConfig::default()
                },
                faults: plan_for(seed),
                trace: fastjoin::core::trace::TraceConfig::default(),
                snapshot_interval_ms: 0,
                serve_metrics: None,
                snapshot_path: None,
            };
            let verdict: Result<(), String> = match try_run_topology(&cfg, tuples) {
                Err(e) => Err(format!("run failed: {e}")),
                Ok(report) => {
                    let mut problems = Vec::new();
                    if report.results_total != expected {
                        problems
                            .push(format!("results {} != oracle {expected}", report.results_total));
                    }
                    if report.probes_total != tuples_n {
                        problems.push(format!("probes {} != {tuples_n}", report.probes_total));
                    }
                    if report.latency.count() != tuples_n {
                        problems.push(format!(
                            "latency samples {} != {tuples_n}",
                            report.latency.count()
                        ));
                    }
                    let leaked = report.registry.counter_sum("probe_fanout_leaked");
                    if leaked != 0 {
                        problems.push(format!("{leaked} fan-out entries leaked"));
                    }
                    let (ho, hi) = (
                        report.registry.counter_sum("probe_handoffs_out"),
                        report.registry.counter_sum("probe_handoffs_in"),
                    );
                    if ho != hi {
                        problems.push(format!("handoffs out {ho} != in {hi}"));
                    }
                    if problems.is_empty() {
                        Ok(())
                    } else {
                        if failing_journal.is_none() && !report.trace.is_empty() {
                            failing_journal = Some(report.trace.to_jsonl());
                        }
                        Err(problems.join("; "))
                    }
                }
            };
            if let Err(why) = verdict {
                class_bad += 1;
                failures.push(Json::obj(vec![
                    ("class", Json::str(*name)),
                    ("seed", Json::uint(seed)),
                    ("error", Json::str(&why)),
                ]));
            }
        }
        println!("{name:<22} {seeds} seeds, {class_bad} failures");
    }
    if runs == 0 {
        return Err(match only {
            Some(c) => format!("unknown chaos class {c:?}"),
            None => "no chaos runs executed".to_string(),
        });
    }

    let doc = Json::obj(vec![
        ("schema_version", Json::uint(1)),
        ("suite", Json::str("fastjoin chaos matrix")),
        ("seeds_per_class", Json::uint(seeds)),
        ("tuples_per_run", Json::uint(tuples_n)),
        ("batch_size", Json::uint(batch_size as u64)),
        ("channel_cap", Json::uint(channel_cap as u64)),
        ("dispatcher_shards", Json::uint(dispatcher_shards as u64)),
        ("runs", Json::uint(runs)),
        ("failed", Json::uint(failures.len() as u64)),
        ("wall_clock_secs", Json::uint(started.elapsed().as_secs())),
        ("failures", Json::arr(failures.clone().into_iter())),
    ]);
    std::fs::write(&out, doc.to_string_pretty() + "\n").map_err(|e| format!("write {out}: {e}"))?;
    println!(
        "{runs} runs in {:.0}s, {} failures → {out}",
        started.elapsed().as_secs_f64(),
        failures.len()
    );
    if let Some(path) = args.flags.get("trace-out") {
        match &failing_journal {
            Some(jsonl) => {
                std::fs::write(path, jsonl).map_err(|e| format!("write {path}: {e}"))?;
                println!("wrote {path} (trace journal of the first failing run)");
            }
            None => println!("no failing run produced a trace journal; {path} not written"),
        }
    }
    if failures.is_empty() {
        Ok(())
    } else {
        Err(format!("{} of {runs} chaos runs violated exactly-once; see {out}", failures.len()))
    }
}

/// Reads a trace journal (the JSONL written by `--trace-out`) and either
/// summarizes it or reconstructs one migration round's phase timeline
/// (§III-D: trigger → buffer → forward → route flip → drain/abort). The
/// round view exits non-zero when the timeline is causally inconsistent —
/// phases out of order or committed route versions not monotone — so CI
/// can assert a journal tells a coherent story.
fn cmd_trace(args: &Args) -> Result<(), String> {
    use fastjoin::core::trace::{ActorKind, TraceJournal, TraceKind};

    let path =
        args.flags.get("journal").ok_or_else(|| "trace requires --journal PATH".to_string())?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    let mut journal = TraceJournal::from_jsonl(&text)?;
    journal.sort();
    println!("{path}: {} events, {} dropped", journal.len(), journal.dropped());
    // A journal with drops is not trustworthy evidence: causal checks can
    // pass only because the contradicting event fell out of the ring.
    if journal.dropped() > 0 && !args.get("allow-drops", false)? {
        return Err(format!(
            "{} trace events were dropped (ring overflow) — analysis on an \
             incomplete journal is unreliable; rerun with a larger ring, or \
             pass --allow-drops true to proceed anyway",
            journal.dropped()
        ));
    }

    if let Some(round) = args.flags.get("round") {
        let epoch: u64 = round.parse().map_err(|_| format!("bad --round {round:?}"))?;
        let group = match args.flags.get("group").map(String::as_str) {
            Some("r" | "0") => Some(0u8),
            Some("s" | "1") => Some(1u8),
            Some(other) => return Err(format!("bad --group {other:?} (expected r or s)")),
            None => None,
        };
        // Round ids are only unique per group; pick the group or demand one.
        let group = match group {
            Some(g) => g,
            None => {
                let in_group = |g: u8| !journal.round_in(g, epoch).is_empty();
                match (in_group(0), in_group(1)) {
                    (true, false) => 0,
                    (false, true) => 1,
                    (true, true) => {
                        return Err(format!(
                            "round {epoch} exists in both groups; disambiguate with --group r|s"
                        ))
                    }
                    (false, false) => return Err(format!("no events for round {epoch}")),
                }
            }
        };
        let events = journal.round_in(group, epoch);
        if events.is_empty() {
            return Err(format!(
                "no events for round {epoch} of group {}",
                if group == 0 { "r" } else { "s" }
            ));
        }
        let t0 = events[0].at_us;
        println!(
            "round {epoch} of group {} — {} events over {} µs:",
            if group == 0 { "r" } else { "s" },
            events.len(),
            events.last().map_or(0, |e| e.at_us - t0)
        );
        for e in &events {
            let detail = match e.kind {
                TraceKind::MigTrigger => format!("source={} target={}", e.aux, e.aux2),
                TraceKind::MigCmd => format!("target={}", e.aux),
                TraceKind::MigStart => format!("from={} keys={}", e.aux, e.aux2),
                TraceKind::MigStore | TraceKind::MigForward => format!("tuples={}", e.aux),
                TraceKind::RouteStaged => format!("version={}", e.aux),
                TraceKind::RouteUpdated => {
                    if e.actor.kind == ActorKind::Dispatcher {
                        format!("committed version={}", e.aux)
                    } else {
                        format!("buffered-flushed={}", e.aux)
                    }
                }
                TraceKind::MigEnd => format!("from={}", e.aux),
                TraceKind::MigAbort => {
                    if e.actor.kind == ActorKind::Dispatcher {
                        format!("accepted, source={}", e.aux)
                    } else {
                        String::new()
                    }
                }
                TraceKind::MigReturn => format!("stored={} inflight={}", e.aux, e.aux2),
                TraceKind::MigDone => format!("tuples_moved={}", e.aux),
                TraceKind::AbortRequest => format!("source={}", e.aux),
                TraceKind::AbortOutcome => {
                    format!("aborted={}", if e.aux == 1 { "yes" } else { "refused" })
                }
                TraceKind::FaultDropTrigger => format!("source={} target={}", e.aux, e.aux2),
                TraceKind::FaultRestart => format!("restarts={}", e.aux),
                TraceKind::ShardRestart => format!("shard={} fence={}", e.aux, e.aux2),
                TraceKind::MonitorDown => format!("restarts={}", e.aux),
                TraceKind::MonitorUp => format!("degraded_ms={}", e.aux),
                TraceKind::SnapshotRepublish => format!("shard={} fence={}", e.aux, e.aux2),
                TraceKind::MigDecision => {
                    let reason = match e.aux {
                        0 => "triggered",
                        1 => "cooldown",
                        2 => "in_flight",
                        3 => "degenerate",
                        _ => "unknown",
                    };
                    format!("reason={reason} source={} target={}", e.aux2 / 256, e.aux2 % 256)
                }
                TraceKind::MigPlanKey => {
                    format!("key={} benefit={:.3} tuples={}", e.seq, e.aux as f64 / 1000.0, e.aux2)
                }
                TraceKind::Ingest
                | TraceKind::StoreDone
                | TraceKind::ProbeDone
                | TraceKind::Eos
                | TraceKind::FaultCrash => String::new(),
            };
            println!(
                "  +{:>8} µs  {:<12} {:<16} {detail}",
                e.at_us - t0,
                e.actor.label(),
                e.kind.name()
            );
        }
        // Causal checks: the §III-D phase order, and monotone committed
        // route versions across the whole journal for this group.
        let mut problems = Vec::new();
        let first = |k: TraceKind| events.iter().position(|e| e.kind == k);
        let order = [
            (TraceKind::MigTrigger, TraceKind::MigCmd),
            (TraceKind::MigCmd, TraceKind::MigStart),
            (TraceKind::MigStart, TraceKind::MigStore),
            (TraceKind::MigStore, TraceKind::RouteStaged),
            (TraceKind::RouteStaged, TraceKind::MigEnd),
            (TraceKind::MigEnd, TraceKind::MigDone),
            (TraceKind::AbortRequest, TraceKind::AbortOutcome),
            (TraceKind::MigAbort, TraceKind::MigReturn),
        ];
        for (a, b) in order {
            if let (Some(ia), Some(ib)) = (first(a), first(b)) {
                if ia > ib {
                    problems.push(format!("{} appears after {}", a.name(), b.name()));
                }
            }
        }
        let versions: Vec<u64> = journal
            .events()
            .iter()
            .filter(|e| {
                e.kind == TraceKind::RouteUpdated
                    && e.actor.kind == ActorKind::Dispatcher
                    && e.aux2 == u64::from(group)
            })
            .map(|e| e.aux)
            .collect();
        if versions.windows(2).any(|w| w[0] >= w[1]) {
            problems.push(format!("committed route versions not monotone: {versions:?}"));
        }
        if problems.is_empty() {
            println!("timeline OK: phases in causal order, route versions monotone");
            return Ok(());
        }
        return Err(format!("inconsistent timeline:\n  {}", problems.join("\n  ")));
    }

    // Summary mode: counts per kind and per actor, then the rounds seen.
    let kind_filter = args.flags.get("kind").cloned();
    let actor_filter = args.flags.get("actor").cloned();
    let mut by_kind: Vec<(String, u64)> = Vec::new();
    let mut by_actor: Vec<(String, u64)> = Vec::new();
    let mut rounds: Vec<(u8, u64, usize, bool)> = Vec::new();
    for e in journal.events() {
        if let Some(k) = &kind_filter {
            if e.kind.name() != k {
                continue;
            }
        }
        if let Some(a) = &actor_filter {
            if &e.actor.label() != a {
                continue;
            }
        }
        let kname = e.kind.name().to_string();
        match by_kind.iter_mut().find(|(n, _)| *n == kname) {
            Some((_, c)) => *c += 1,
            None => by_kind.push((kname, 1)),
        }
        let aname = e.actor.label();
        match by_actor.iter_mut().find(|(n, _)| *n == aname) {
            Some((_, c)) => *c += 1,
            None => by_actor.push((aname, 1)),
        }
    }
    for group in 0..2u8 {
        let mut epochs: Vec<u64> = journal
            .events()
            .iter()
            .filter(|e| {
                // 0 and NO_ROUND both mean "no migration round": monitors
                // allocate epochs from 1, and NO_ROUND is the explicit
                // sentinel for protocol events outside any round.
                e.epoch != 0
                    && e.epoch != fastjoin::core::trace::TraceEvent::NO_ROUND
                    && e.kind == fastjoin::core::trace::TraceKind::MigTrigger
                    && e.actor.group == group
            })
            .map(|e| e.epoch)
            .collect();
        epochs.dedup();
        for epoch in epochs {
            let evs = journal.round_in(group, epoch);
            let done =
                evs.iter().any(|e| matches!(e.kind, TraceKind::MigDone | TraceKind::AbortOutcome));
            rounds.push((group, epoch, evs.len(), done));
        }
    }
    println!("events by kind:");
    for (name, count) in &by_kind {
        println!("  {name:<18} {count}");
    }
    println!("events by actor:");
    for (name, count) in &by_actor {
        println!("  {name:<12} {count}");
    }
    if !rounds.is_empty() {
        println!("migration rounds (inspect with --round N --group r|s):");
        for (group, epoch, n, done) in rounds {
            println!(
                "  group {} round {epoch}: {n} events, {}",
                if group == 0 { "r" } else { "s" },
                if done { "closed" } else { "open" }
            );
        }
    }
    Ok(())
}

/// Fetches one document from the runtime's introspection server over a
/// hand-rolled HTTP/1.1 GET (std `TcpStream` — the server side is equally
/// minimal, so no client library is warranted).
fn http_get(port: u16, path: &str) -> Result<String, String> {
    use std::io::{Read as _, Write as _};
    let addr = format!("127.0.0.1:{port}");
    let mut stream =
        std::net::TcpStream::connect(&addr).map_err(|e| format!("connect {addr}: {e}"))?;
    stream
        .set_read_timeout(Some(std::time::Duration::from_secs(2)))
        .map_err(|e| format!("socket timeout: {e}"))?;
    let request = format!("GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n");
    stream.write_all(request.as_bytes()).map_err(|e| format!("send to {addr}: {e}"))?;
    let mut response = String::new();
    stream.read_to_string(&mut response).map_err(|e| format!("read from {addr}: {e}"))?;
    let (head, body) = response
        .split_once("\r\n\r\n")
        .ok_or_else(|| format!("malformed HTTP response from {addr}"))?;
    if !head.starts_with("HTTP/1.1 200") {
        return Err(format!("{addr}{path}: {}", head.lines().next().unwrap_or("no status line")));
    }
    Ok(body.to_string())
}

/// Renders one `/snapshot` JSON document as a compact live table:
/// per-group monitor state, instances × load/queue/hot-keys, channel
/// depths, and supervisor health. Tolerates missing fields (zeros/blanks)
/// so a `top` built against a newer schema still renders older streams.
fn render_snapshot(snap: &fastjoin::core::json::Json) {
    use fastjoin::core::json::Json;
    let num = |j: &Json, key: &str| j.get(key).and_then(Json::as_u64).unwrap_or(0);
    println!("snapshot #{} at {} µs", num(snap, "seq"), num(snap, "at_us"));
    if let Some(groups) = snap.get("groups").and_then(Json::as_arr) {
        for g in groups {
            let side = if num(g, "group") == 0 { "r" } else { "s" };
            println!(
                "  group {side}: LI={:.2} phase={} epoch={} triggered={} effective={}",
                g.get("imbalance").and_then(Json::as_num).unwrap_or(0.0),
                g.get("phase").and_then(Json::as_str).unwrap_or("?"),
                num(g, "epoch"),
                num(g, "triggered"),
                num(g, "effective"),
            );
        }
    }
    println!("  {:<6} {:>10} {:>7} {:<4} hot keys (key x weight)", "inst", "load", "queue", "mig");
    if let Some(instances) = snap.get("instances").and_then(Json::as_arr) {
        for p in instances {
            let side = if num(p, "group") == 0 { "r" } else { "s" };
            let hot = p.get("hot_keys").and_then(Json::as_arr).map_or_else(String::new, |ks| {
                ks.iter()
                    .map(|k| format!("{}x{}", num(k, "key"), num(k, "weight")))
                    .collect::<Vec<_>>()
                    .join(" ")
            });
            let migrating = matches!(p.get("migrating"), Some(Json::Bool(true)));
            println!(
                "  {:<6} {:>10} {:>7} {:<4} {hot}",
                format!("{side}{}", num(p, "id")),
                num(p, "load"),
                num(p, "queue_depth"),
                if migrating { "yes" } else { "-" },
            );
        }
    }
    if let Some(Json::Obj(queues)) = snap.get("queues") {
        if !queues.is_empty() {
            let depths: Vec<String> = queues
                .iter()
                .map(|(name, depth)| format!("{name}={}", depth.as_u64().unwrap_or(0)))
                .collect();
            println!("  queues: {}", depths.join(" "));
        }
    }
    if let Some(sup) = snap.get("supervisor") {
        println!(
            "  supervisor: failures={} restarts={} degraded={}",
            num(sup, "executor_failures"),
            num(sup, "control_restarts"),
            matches!(sup.get("degraded"), Some(Json::Bool(true))),
        );
    }
}

/// Live view of a running topology: polls `/snapshot` from a runtime
/// started with `--serve-metrics PORT` (or tails the JSONL file written
/// by `--snapshot-out`) and renders a compact table per poll.
fn cmd_top(args: &Args) -> Result<(), String> {
    use fastjoin::core::json::Json;
    let port: u16 = args.get("port", 0)?;
    let file = args.flags.get("file").cloned();
    if (port == 0) == file.is_none() {
        return Err("top requires exactly one of --port N or --file PATH".to_string());
    }
    let iters: u64 = args.get("iters", 1)?;
    let interval_ms: u64 = args.get("interval-ms", 1000)?;
    for iter in 0..iters {
        if iter > 0 {
            std::thread::sleep(std::time::Duration::from_millis(interval_ms));
        }
        let text = match &file {
            Some(path) => {
                let all = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
                all.lines()
                    .next_back()
                    .map(str::to_string)
                    .ok_or_else(|| format!("{path} has no snapshots yet"))?
            }
            None => http_get(port, "/snapshot")?,
        };
        let snap = Json::parse(&text).map_err(|e| format!("bad snapshot JSON: {e}"))?;
        render_snapshot(&snap);
    }
    Ok(())
}

fn usage() -> &'static str {
    "usage: fastjoin-cli <command> [--flag value]...\n\
     \n\
     commands:\n\
       simulate   discrete-event simulation of one system over a workload\n\
       compare    run the paper's headline systems side by side\n\
       topology   threaded runtime over a ride-hailing workload\n\
       census     key-skew statistics of a generated workload\n\
       gen        write a workload trace to a file (--out PATH)\n\
       bench      observability smoke suite -> BENCH_smoke.json\n\
       chaos      seeded fault-schedule matrix -> CHAOS_report.json\n\
       trace      inspect a trace journal written by --trace-out\n\
       top        live table from a running topology's snapshot plane\n\
     \n\
     fault-injection (chaos) knobs, all seed-deterministic via FaultPlan:\n\
       --seeds N       seeds per fault class (default 100)\n\
       --tuples N      workload size per run (default 6000)\n\
       --class NAME    run one class only: crash-pre-migstart |\n\
                       crash-handoff-forward | crash-pre-route-flip |\n\
                       crash-steady-state | channel-chaos | stalled-round |\n\
                       kill-sequencer | kill-shard | kill-monitor\n\
                       (the kill-* classes crash control-plane executors;\n\
                       sequencer/shard kills need --dispatcher-shards >= 2)\n\
       --out PATH      failure-report JSON (default CHAOS_report.json)\n\
       --trace-out P   write the first failing run's trace journal to P\n\
       --batch-size N  data-plane batch size for every run (default 1;\n\
                       CI also sweeps the matrix batched)\n\
       --channel-cap N bounded-channel capacity (default 256)\n\
       --dispatcher-shards N  dispatcher shard count for every run\n\
                       (default 1 = the single-threaded dispatcher;\n\
                       CI also sweeps the matrix sharded)\n\
     bench:\n\
       --deadline-secs N   wall-clock deadline per scenario (default 120);\n\
                           breach exits non-zero\n\
       --batch-size N      data-plane batch size (default 64, must be >= 2);\n\
                           compared against an unbatched twin, which must\n\
                           be slower or the suite fails\n\
       --channel-cap N     bounded-channel capacity (default 256)\n\
       --dispatcher-shards N  shard count for the named scenarios\n\
                           (default 1); the shard-scaling section always\n\
                           sweeps 1/2/4 shards regardless\n\
       --trace-out PATH    write the skewed run's trace journal (JSONL)\n\
       --prom-out PATH     write the skewed run's metrics in Prometheus\n\
                           text format\n\
       --history PATH      headline-numbers ledger, appended per run\n\
                           (default BENCH_history.jsonl; warns when\n\
                           throughput drops >20% vs the previous entry\n\
                           for the same config)\n\
     trace:\n\
       --journal PATH  the JSONL journal to read (required)\n\
       --round N       reconstruct migration round N's phase timeline\n\
       --group r|s     which group's round N (required if both have one)\n\
       --kind NAME     filter the summary to one event kind\n\
       --actor LABEL   filter the summary to one actor (e.g. inst.r3)\n\
       --allow-drops true  analyse a journal that dropped events instead\n\
                           of exiting non-zero\n\
     topology introspection (all off by default):\n\
       --snapshot-ms N     periodic RuntimeSnapshot interval (0 = off)\n\
       --snapshot-out PATH append each snapshot as one JSON line\n\
       --serve-metrics N   serve /metrics and /snapshot on 127.0.0.1:N\n\
     top:\n\
       --port N        poll /snapshot from a --serve-metrics runtime\n\
       --file PATH     read the latest snapshot from a --snapshot-out file\n\
       --iters N       how many times to poll (default 1)\n\
       --interval-ms N delay between polls (default 1000)\n\
     see the module docs (cargo doc) or the README for the full flag list"
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = argv.split_first() else {
        eprintln!("{}", usage());
        return ExitCode::FAILURE;
    };
    let result = Args::parse(rest).and_then(|args| match cmd.as_str() {
        "simulate" => cmd_simulate(&args),
        "compare" => cmd_compare(&args),
        "topology" => cmd_topology(&args),
        "census" => cmd_census(&args),
        "gen" => cmd_gen(&args),
        "bench" => cmd_bench(&args),
        "chaos" => cmd_chaos(&args),
        "trace" => cmd_trace(&args),
        "top" => cmd_top(&args),
        other => Err(format!("unknown command {other:?}\n{}", usage())),
    });
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Args {
        Args::parse(&list.iter().map(|s| s.to_string()).collect::<Vec<_>>()).unwrap()
    }

    #[test]
    fn parses_flag_pairs() {
        let a = args(&["--instances", "16", "--theta", "1.8"]);
        assert_eq!(a.get::<usize>("instances", 0).unwrap(), 16);
        assert!((a.get::<f64>("theta", 0.0).unwrap() - 1.8).abs() < 1e-9);
        assert_eq!(a.get::<u64>("gb", 30).unwrap(), 30, "default applies");
    }

    #[test]
    fn rejects_bad_flags() {
        assert!(Args::parse(&["positional".to_string()]).is_err());
        assert!(Args::parse(&["--dangling".to_string()]).is_err());
        let a = args(&["--instances", "lots"]);
        assert!(a.get::<usize>("instances", 0).is_err());
    }

    #[test]
    fn parses_every_system() {
        for (name, kind) in [
            ("fastjoin", SystemKind::FastJoin),
            ("bistream", SystemKind::BiStream),
            ("contrand", SystemKind::BiStreamContRand),
            ("broadcast", SystemKind::Broadcast),
        ] {
            assert_eq!(parse_system(name).unwrap(), kind);
        }
        assert!(parse_system("storm").is_err());
    }

    #[test]
    fn builds_gxy_workloads() {
        let a = args(&["--workload", "gxy", "--x", "0", "--y", "2"]);
        let wl = build_workload(&a).unwrap();
        assert!(!wl.is_empty());
    }
}
