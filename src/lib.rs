//! # fastjoin
//!
//! Facade crate for the FastJoin reproduction (Zhou et al., IPDPS 2019):
//! re-exports the workspace crates under one name and hosts the runnable
//! examples (`examples/`) and cross-crate integration tests (`tests/`).
//!
//! Start with [`core::JoinCluster`] for the synchronous API,
//! [`sim`] for timed experiments, and [`runtime`] for the threaded engine.

#![warn(missing_docs)]

pub use fastjoin_baselines as baselines;
pub use fastjoin_core as core;
pub use fastjoin_datagen as datagen;
pub use fastjoin_runtime as runtime;
pub use fastjoin_sim as sim;
